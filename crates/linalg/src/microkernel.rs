//! Register-tiled f64 microkernels for the packed GEMM/SYRK drivers.
//!
//! One microkernel invocation updates an `MR × NR` tile of C from an
//! `MR`-row packed A panel and an `NR`-column packed B panel (layouts in
//! [`crate::pack`]). Four tiers share one accumulation contract:
//!
//! * **every** output element is a single running sum, seeded from the
//!   (already beta-scaled) C value, adding `fl(fl(alpha·a) · b)` terms in
//!   ascending contraction order (`alpha` folded in at pack time);
//! * **no** fused multiply-add — each term is an IEEE-754 multiply followed
//!   by an IEEE-754 add, on every tier. SSE2/AVX2/AVX-512 lanes hold
//!   independent per-element accumulators, so vector width never
//!   reassociates anything.
//!
//! Under that contract the tier, the tile shape, and the cache-block sizes
//! are all invisible in the result bits — which is what lets `TUCKER_SIMD`
//! and `TUCKER_THREADS` vary freely without perturbing a single output bit
//! (`docs/ARCHITECTURE.md` §4).
//!
//! Ragged tiles (block edges, and the diagonal tiles of SYRK's lower
//! triangle) run a scalar edge kernel that follows the identical per-element
//! recurrence, so edge elements round exactly like interior ones.
//!
//! This file is covered by the `ci.sh` panic-free grep gate: no `assert`-
//! family macros, no `unwrap`/`expect`. Callers guarantee the packed-panel
//! and C-slice bounds documented on each function; all indexing is safe
//! slice indexing.

use crate::simd::SimdTier;
use tucker_obs::metrics::Counter;

/// Microkernel tile rows (A-panel interleave width).
pub const MR: usize = 8;
/// Microkernel tile columns (B-panel interleave width).
pub const NR: usize = 4;

/// Full `MR × NR` tiles retired by the AVX-512 kernel (process-wide).
pub static TILES_AVX512: Counter = Counter::new("linalg.kernel.tiles.avx512");
/// Full `MR × NR` tiles retired by the AVX2 kernel (process-wide).
pub static TILES_AVX2: Counter = Counter::new("linalg.kernel.tiles.avx2");
/// Full `MR × NR` tiles retired by the SSE2 kernel (process-wide).
pub static TILES_SSE2: Counter = Counter::new("linalg.kernel.tiles.sse2");
/// Full `MR × NR` tiles retired by the scalar kernel (process-wide).
pub static TILES_SCALAR: Counter = Counter::new("linalg.kernel.tiles.scalar");
/// Ragged / triangle-masked tiles retired by the scalar edge kernel.
pub static TILES_EDGE: Counter = Counter::new("linalg.kernel.tiles.edge");

/// Updates one full `MR × NR` tile: `c[i·ldc + j] += Σ_p a[p·MR+i]·b[p·NR+j]`
/// for `p` ascending, one accumulator per element, no FMA.
///
/// `a` holds at least `kb·MR` values, `b` at least `kb·NR`, and `c` (whose
/// first element is the tile's top-left corner) at least `(MR-1)·ldc + NR`.
#[inline]
pub fn ukr_full(tier: SimdTier, kb: usize, a: &[f64], b: &[f64], c: &mut [f64], ldc: usize) {
    match tier {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx512 => {
            // Safety: `force_tier`/`current_tier` only ever yield Avx512 when
            // `is_x86_feature_detected!("avx512f")` held; bounds per the doc
            // contract above.
            unsafe { ukr_full_avx512(kb, a, b, c, ldc) }
        }
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => {
            // Safety: `force_tier`/`current_tier` only ever yield Avx2 when
            // `is_x86_feature_detected!("avx2")` held; bounds per the doc
            // contract above, re-checked with `get`-style slicing below.
            unsafe { ukr_full_avx2(kb, a, b, c, ldc) }
        }
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse2 => {
            // Safety: SSE2 is unconditionally available on x86_64.
            unsafe {
                ukr_half_sse2(kb, 0, a, b, c, ldc);
                ukr_half_sse2(kb, 4, a, b, c, ldc);
            }
        }
        _ => ukr_full_scalar(kb, a, b, c, ldc),
    }
}

/// Portable tier: the contract written out literally.
fn ukr_full_scalar(kb: usize, a: &[f64], b: &[f64], c: &mut [f64], ldc: usize) {
    let mut acc = [[0.0f64; NR]; MR];
    for (i, row) in acc.iter_mut().enumerate() {
        let crow = &c[i * ldc..i * ldc + NR];
        row.copy_from_slice(crow);
    }
    for p in 0..kb {
        let ap = &a[p * MR..p * MR + MR];
        let bp = &b[p * NR..p * NR + NR];
        for (i, row) in acc.iter_mut().enumerate() {
            let av = ap[i];
            for (j, cell) in row.iter_mut().enumerate() {
                // Multiply then add — two IEEE roundings, same on all tiers.
                *cell += av * bp[j];
            }
        }
    }
    for (i, row) in acc.iter().enumerate() {
        c[i * ldc..i * ldc + NR].copy_from_slice(row);
    }
}

/// SSE2 tier, one 4-row half of the tile (`r0` ∈ {0, 4}): 4 rows × 2 xmm
/// accumulators. Per-lane ops only — bit-identical to the scalar tier.
///
/// # Safety
/// Caller upholds the `ukr_full` bounds contract; SSE2 must be available
/// (always true on `x86_64`).
#[cfg(target_arch = "x86_64")]
unsafe fn ukr_half_sse2(kb: usize, r0: usize, a: &[f64], b: &[f64], c: &mut [f64], ldc: usize) {
    use std::arch::x86_64::*;
    let mut acc = [[_mm_setzero_pd(); 2]; 4];
    for (i, row) in acc.iter_mut().enumerate() {
        let base = (r0 + i) * ldc;
        row[0] = _mm_loadu_pd(c.as_ptr().add(base));
        row[1] = _mm_loadu_pd(c.as_ptr().add(base + 2));
    }
    for p in 0..kb {
        let b0 = _mm_loadu_pd(b.as_ptr().add(p * NR));
        let b1 = _mm_loadu_pd(b.as_ptr().add(p * NR + 2));
        let ap = a.as_ptr().add(p * MR + r0);
        for (i, row) in acc.iter_mut().enumerate() {
            let av = _mm_set1_pd(*ap.add(i));
            row[0] = _mm_add_pd(row[0], _mm_mul_pd(av, b0));
            row[1] = _mm_add_pd(row[1], _mm_mul_pd(av, b1));
        }
    }
    for (i, row) in acc.iter().enumerate() {
        let base = (r0 + i) * ldc;
        _mm_storeu_pd(c.as_mut_ptr().add(base), row[0]);
        _mm_storeu_pd(c.as_mut_ptr().add(base + 2), row[1]);
    }
}

/// AVX2 tier: 8 ymm accumulators, one per tile row; `vbroadcastsd` +
/// `vmulpd` + `vaddpd` (deliberately **not** `vfmadd` — FMA's single
/// rounding would diverge from the SSE2/scalar tiers).
///
/// # Safety
/// Caller upholds the `ukr_full` bounds contract and has verified AVX2
/// support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn ukr_full_avx2(kb: usize, a: &[f64], b: &[f64], c: &mut [f64], ldc: usize) {
    use std::arch::x86_64::*;
    let mut acc = [_mm256_setzero_pd(); MR];
    for (i, row) in acc.iter_mut().enumerate() {
        *row = _mm256_loadu_pd(c.as_ptr().add(i * ldc));
    }
    for p in 0..kb {
        let bv = _mm256_loadu_pd(b.as_ptr().add(p * NR));
        let ap = a.as_ptr().add(p * MR);
        for (i, row) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_pd(*ap.add(i));
            *row = _mm256_add_pd(*row, _mm256_mul_pd(av, bv));
        }
    }
    for (i, row) in acc.iter().enumerate() {
        _mm256_storeu_pd(c.as_mut_ptr().add(i * ldc), *row);
    }
}

/// AVX-512F tier: the tile's 8 rows ride in 4 zmm accumulators, two rows per
/// register (lane `l` of pair `i` holds `C[2i + l/4][l mod 4]`). Per step:
/// one 8-wide load of the A column, one 256→512 broadcast of the B row, then
/// per pair a lane permute (`vpermpd`) and `vmulpd` + `vaddpd` — deliberately
/// **not** `vfmadd`. Every lane is still one independent per-element
/// accumulator fed multiply-then-add, so the bits match the other tiers by
/// construction.
///
/// # Safety
/// Caller upholds the `ukr_full` bounds contract and has verified AVX-512F
/// support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn ukr_full_avx512(kb: usize, a: &[f64], b: &[f64], c: &mut [f64], ldc: usize) {
    use std::arch::x86_64::*;
    // Lane sources inside the 8-wide A column for each row pair.
    let idx = [
        _mm512_setr_epi64(0, 0, 0, 0, 1, 1, 1, 1),
        _mm512_setr_epi64(2, 2, 2, 2, 3, 3, 3, 3),
        _mm512_setr_epi64(4, 4, 4, 4, 5, 5, 5, 5),
        _mm512_setr_epi64(6, 6, 6, 6, 7, 7, 7, 7),
    ];
    let mut acc = [_mm512_setzero_pd(); MR / 2];
    for (i, pair) in acc.iter_mut().enumerate() {
        let lo = _mm256_loadu_pd(c.as_ptr().add(2 * i * ldc));
        let hi = _mm256_loadu_pd(c.as_ptr().add((2 * i + 1) * ldc));
        *pair = _mm512_insertf64x4::<1>(_mm512_castpd256_pd512(lo), hi);
    }
    for p in 0..kb {
        let acol = _mm512_loadu_pd(a.as_ptr().add(p * MR));
        let bv = _mm512_broadcast_f64x4(_mm256_loadu_pd(b.as_ptr().add(p * NR)));
        for (pair, ix) in acc.iter_mut().zip(idx) {
            let av = _mm512_permutexvar_pd(ix, acol);
            *pair = _mm512_add_pd(*pair, _mm512_mul_pd(av, bv));
        }
    }
    for (i, pair) in acc.iter().enumerate() {
        _mm256_storeu_pd(
            c.as_mut_ptr().add(2 * i * ldc),
            _mm512_extractf64x4_pd::<0>(*pair),
        );
        _mm256_storeu_pd(
            c.as_mut_ptr().add((2 * i + 1) * ldc),
            _mm512_extractf64x4_pd::<1>(*pair),
        );
    }
}

/// Scalar edge kernel for ragged and triangle-masked tiles: `mr × nr`
/// (`mr ≤ MR`, `nr ≤ NR`) live elements, same per-element recurrence as
/// [`ukr_full`].
///
/// `tri_cut` masks columns to the lower triangle in tile-local terms: the
/// element `(i, j)` is updated only when `j ≤ i + tri_cut` (callers pass
/// `global_row0 − global_col0`; any value `≥ nr − 1` disables masking, and
/// `isize::MAX` is the conventional "no mask").
pub fn ukr_edge(
    kb: usize,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    ldc: usize,
    mr: usize,
    nr: usize,
    tri_cut: isize,
) {
    for i in 0..mr {
        let jmax = if tri_cut >= nr as isize {
            nr
        } else {
            // tri_cut < nr ≤ NR here, so i + tri_cut + 1 cannot overflow.
            (i as isize + tri_cut + 1).clamp(0, nr as isize) as usize
        };
        let crow = &mut c[i * ldc..i * ldc + jmax];
        for (j, cell) in crow.iter_mut().enumerate() {
            let mut sum = *cell;
            for p in 0..kb {
                sum += a[p * MR + i] * b[p * NR + j];
            }
            *cell = sum;
        }
    }
}

/// Runs the microkernel grid over one packed block pair: `mb × kb` packed A
/// (`a_pack`, `⌈mb/MR⌉` panels) times `kb × nb` packed B (`b_pack`,
/// `⌈nb/NR⌉` panels), accumulating into `c` (top-left corner of the block,
/// leading dimension `ldc`).
///
/// `tri = Some((row0, col0))` gives the block's global position inside a
/// lower-triangular output: tiles fully above the diagonal are skipped,
/// tiles crossing it run the masked edge kernel, and only full tiles fully
/// on/below it use the vector kernel. `tri = None` is a plain dense block.
///
/// Returns `(full_tiles, edge_tiles)` retired, for the tier counters.
#[allow(clippy::too_many_arguments)]
pub fn block_kernel(
    tier: SimdTier,
    a_pack: &[f64],
    b_pack: &[f64],
    mb: usize,
    nb: usize,
    kb: usize,
    c: &mut [f64],
    ldc: usize,
    tri: Option<(usize, usize)>,
) -> (u64, u64) {
    let (mut full, mut edge) = (0u64, 0u64);
    for jp in 0..nb.div_ceil(NR) {
        let j0 = jp * NR;
        let nr = NR.min(nb - j0);
        let bpanel = &b_pack[jp * kb * NR..];
        for ip in 0..mb.div_ceil(MR) {
            let i0 = ip * MR;
            let mr = MR.min(mb - i0);
            // Lower-triangle classification, in global coordinates.
            let mut tri_cut = isize::MAX;
            let mut full_ok = mr == MR && nr == NR;
            if let Some((row0, col0)) = tri {
                let gi = row0 + i0; // global row of the tile's first row
                let gj = col0 + j0; // global col of the tile's first col
                if gj > gi + (mr - 1) {
                    continue; // entirely above the diagonal
                }
                tri_cut = gi as isize - gj as isize;
                // Full vector tile only when its last column ≤ first row.
                full_ok = full_ok && gj + (NR - 1) <= gi;
            }
            let apanel = &a_pack[ip * MR * kb..];
            let ctile = &mut c[i0 * ldc + j0..];
            if full_ok {
                ukr_full(tier, kb, apanel, bpanel, ctile, ldc);
                full += 1;
            } else {
                ukr_edge(kb, apanel, bpanel, ctile, ldc, mr, nr, tri_cut);
                edge += 1;
            }
        }
    }
    record_tiles(tier, full, edge);
    (full, edge)
}

/// Adds retired-tile counts to the per-tier process counters.
fn record_tiles(tier: SimdTier, full: u64, edge: u64) {
    if full > 0 {
        match tier {
            SimdTier::Avx512 => TILES_AVX512.add(full),
            SimdTier::Avx2 => TILES_AVX2.add(full),
            SimdTier::Sse2 => TILES_SSE2.add(full),
            SimdTier::Scalar => TILES_SCALAR.add(full),
        }
    }
    if edge > 0 {
        TILES_EDGE.add(edge);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::supported_tiers;

    /// The contract recurrence, written independently of the kernels.
    fn reference_tile(
        kb: usize,
        a: &[f64],
        b: &[f64],
        c: &mut [f64],
        ldc: usize,
        mr: usize,
        nr: usize,
        tri_cut: isize,
    ) {
        for i in 0..mr {
            for j in 0..nr {
                if (j as isize) > (i as isize).saturating_add(tri_cut) {
                    continue;
                }
                let mut sum = c[i * ldc + j];
                for p in 0..kb {
                    sum += a[p * MR + i] * b[p * NR + j];
                }
                c[i * ldc + j] = sum;
            }
        }
    }

    fn panel_pair(kb: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        // Deterministic, awkward values (mixed signs + magnitudes) so any
        // reassociation in a kernel shows up in the low mantissa bits.
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 3.0_f64.powi((s % 7) as i32 - 3)
        };
        let a: Vec<f64> = (0..kb * MR).map(|_| next()).collect();
        let b: Vec<f64> = (0..kb * NR).map(|_| next()).collect();
        (a, b)
    }

    #[test]
    fn all_tiers_match_the_contract_bitwise() {
        for &kb in &[0usize, 1, 2, 7, 33] {
            let (a, b) = panel_pair(kb.max(1), 42 + kb as u64);
            for ldc in [NR, NR + 3] {
                let c0: Vec<f64> = (0..MR * ldc).map(|v| (v as f64) * 0.125 - 3.0).collect();
                let mut want = c0.clone();
                reference_tile(kb, &a, &b, &mut want, ldc, MR, NR, isize::MAX);
                for tier in supported_tiers() {
                    let mut got = c0.clone();
                    ukr_full(tier, kb, &a, &b, &mut got, ldc);
                    let gb: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
                    let wb: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(gb, wb, "tier {} kb {kb} ldc {ldc}", tier.name());
                }
            }
        }
    }

    #[test]
    fn edge_kernel_matches_contract_for_every_shape_and_cut() {
        let kb = 9;
        let (a, b) = panel_pair(kb, 7);
        let ldc = NR + 1;
        for mr in 1..=MR {
            for nr in 1..=NR {
                for tri_cut in [-2isize, 0, 1, 3, isize::MAX] {
                    let c0: Vec<f64> = (0..MR * ldc).map(|v| v as f64 * 0.5 - 7.0).collect();
                    let mut want = c0.clone();
                    reference_tile(kb, &a, &b, &mut want, ldc, mr, nr, tri_cut);
                    let mut got = c0.clone();
                    ukr_edge(kb, &a, &b, &mut got, ldc, mr, nr, tri_cut);
                    assert_eq!(
                        got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "mr {mr} nr {nr} cut {tri_cut}"
                    );
                }
            }
        }
    }

    #[test]
    fn block_kernel_masks_the_lower_triangle() {
        // A 10×10 triangular block at global (0, 0): strictly-upper elements
        // must remain untouched, everything else must follow the contract.
        let (m, k) = (10usize, 6usize);
        let kb = k;
        let mb_p = m.div_ceil(MR) * MR;
        let nb_p = m.div_ceil(NR) * NR;
        let mut a_pack = vec![0.0; mb_p * kb];
        let mut b_pack = vec![0.0; kb * nb_p];
        let src: Vec<f64> = (0..m * k).map(|v| (v as f64).sin()).collect();
        crate::pack::pack_a(
            &mut a_pack,
            crate::gemm::Transpose::No,
            1.0,
            &src,
            k,
            0,
            m,
            0,
            kb,
        );
        crate::pack::pack_b(
            &mut b_pack,
            crate::gemm::Transpose::Yes,
            &src,
            k,
            0,
            kb,
            0,
            m,
        );
        let sentinel = -1234.5;
        let mut c = vec![sentinel; m * m];
        let (full, edge) = block_kernel(
            SimdTier::Scalar,
            &a_pack,
            &b_pack,
            m,
            m,
            kb,
            &mut c,
            m,
            Some((0, 0)),
        );
        assert!(full + edge > 0);
        for i in 0..m {
            for j in 0..m {
                if j > i {
                    assert_eq!(c[i * m + j], sentinel, "upper ({i},{j}) was written");
                } else {
                    let mut want = sentinel;
                    for p in 0..k {
                        want += src[i * k + p] * src[j * k + p];
                    }
                    assert_eq!(c[i * m + j].to_bits(), want.to_bits(), "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn block_kernel_dense_matches_reference_across_tiers() {
        let (mb, nb, kb) = (13usize, 9usize, 11usize);
        let mb_p = mb.div_ceil(MR) * MR;
        let nb_p = nb.div_ceil(NR) * NR;
        let asrc: Vec<f64> = (0..mb * kb).map(|v| (v as f64 * 0.7).cos()).collect();
        let bsrc: Vec<f64> = (0..kb * nb).map(|v| (v as f64 * 1.3).sin()).collect();
        let mut a_pack = vec![0.0; mb_p * kb];
        let mut b_pack = vec![0.0; kb * nb_p];
        crate::pack::pack_a(
            &mut a_pack,
            crate::gemm::Transpose::No,
            1.0,
            &asrc,
            kb,
            0,
            mb,
            0,
            kb,
        );
        crate::pack::pack_b(
            &mut b_pack,
            crate::gemm::Transpose::No,
            &bsrc,
            nb,
            0,
            kb,
            0,
            nb,
        );
        let c0: Vec<f64> = (0..mb * nb).map(|v| v as f64 * 0.01).collect();
        let mut want: Option<Vec<u64>> = None;
        for tier in supported_tiers() {
            let mut c = c0.clone();
            block_kernel(tier, &a_pack, &b_pack, mb, nb, kb, &mut c, nb, None);
            // Cross-check a few elements against a direct sum.
            for &(i, j) in &[(0usize, 0usize), (7, 3), (12, 8), (5, 4)] {
                let mut s = c0[i * nb + j];
                for p in 0..kb {
                    s += asrc[i * kb + p] * bsrc[p * nb + j];
                }
                assert_eq!(c[i * nb + j].to_bits(), s.to_bits(), "tier {}", tier.name());
            }
            let bits: Vec<u64> = c.iter().map(|v| v.to_bits()).collect();
            match &want {
                None => want = Some(bits),
                Some(w) => assert_eq!(&bits, w, "tier {} diverged", tier.name()),
            }
        }
    }
}
