//! Householder QR factorization, blocked over the packed GEMM kernels.
//!
//! Sec. IX of the paper notes that for accuracy targets near machine precision
//! the Gram-matrix approach loses half the digits, and proposes computing the
//! SVD of the (tall, skinny) unfolding via a QR preprocessing step "at roughly
//! twice the cost". This module provides that QR step; [`crate::svd`] builds
//! the direct-SVD alternative on top of it.
//!
//! # Blocking
//!
//! For `min(m, n) > QR_PANEL` the factorization runs in compact-WY form:
//! columns are factored [`QR_PANEL`] at a time with the same scalar reflector
//! recurrence the unblocked path uses, a small upper-triangular `T` is
//! accumulated per panel so that the panel's reflector product is
//! `H_{j0}·…·H_{j1-1} = I − V·T·Vᵀ`, and the trailing matrix and the explicit
//! `Q` are updated with Level-3 [`crate::gemm`] calls that flow through the
//! packed microkernels. Panel/`T`/workspace storage is recycled through the
//! thread-local scratch pool ([`crate::pack::with_scratch`]) — no per-call
//! allocations beyond the returned factors.
//!
//! # Determinism contract
//!
//! The blocked recurrence is stated executably by
//! [`householder_qr_reference`]: a self-contained restatement using plain
//! loops and [`crate::gemm::gemm_slices_reference`] that the production path
//! must match **bit for bit**. Because the GEMM contract already pins bits
//! across SIMD tiers, `MC/KC/NC` blocking (including `TUCKER_BLOCK`
//! overrides), and thread counts, the QR bits inherit the same invariances.
//! [`QR_PANEL`] itself is a fixed constant — it is deliberately *not* derived
//! from cache sizes, so the factorization bits never depend on the host.
//! Problems with `min(m, n) ≤ QR_PANEL` take the pre-blocking scalar path
//! ([`householder_qr_unblocked`]) unchanged, bit for bit.

use crate::gemm::{gemm_slices_ctx, Transpose};
use crate::matrix::Matrix;
use crate::pack::with_scratch;
use tucker_exec::ExecContext;
use tucker_obs::metrics::Counter;

/// Total `householder_qr` invocations (either path).
pub static QR_CALLS: Counter = Counter::new("linalg.qr.calls");
/// Estimated flops of those calls (factor + explicit-Q formation),
/// `2mnk − (m+n)k² + 2k³/3 + 4mk² − 2k³` with `k = min(m, n)`.
pub static QR_FLOPS: Counter = Counter::new("linalg.qr.flops");

/// Panel width of the blocked compact-WY path. Fixed — part of the
/// determinism contract, never autotuned (see module docs).
pub const QR_PANEL: usize = 32;

/// Result of a QR factorization `A = Q · R` with `Q` having orthonormal columns.
#[derive(Debug, Clone)]
pub struct QrFactors {
    /// `m × k` matrix with orthonormal columns (`k = min(m, n)` for the thin QR).
    pub q: Matrix,
    /// `k × n` upper-triangular factor.
    pub r: Matrix,
}

/// Standard flop estimate for factorization + explicit thin-Q formation.
fn qr_flops(m: usize, n: usize, k: usize) -> u64 {
    let (m, n, k) = (m as f64, n as f64, k as f64);
    let factor = 2.0 * m * n * k - (m + n) * k * k + 2.0 * k * k * k / 3.0;
    let form_q = 4.0 * m * k * k - 2.0 * k * k * k;
    (factor + form_q).max(0.0) as u64
}

/// Thin Householder QR of an `m × n` matrix (`m ≥ n` or `m < n` both allowed).
///
/// Returns `Q` of size `m × k` and `R` of size `k × n` with `k = min(m, n)`,
/// such that `A ≈ Q·R` and `QᵀQ = I`. Dispatches to the blocked compact-WY
/// path when `k > QR_PANEL` (see module docs); results are bit-identical to
/// [`householder_qr_reference`] either way.
pub fn householder_qr(a: &Matrix) -> QrFactors {
    householder_qr_ctx(ExecContext::global(), a)
}

/// [`householder_qr`] with an explicit execution context for the Level-3
/// updates. The context only affects scheduling, never bits.
pub fn householder_qr_ctx(ctx: &ExecContext, a: &Matrix) -> QrFactors {
    QR_CALLS.add(1);
    let k = a.rows().min(a.cols());
    QR_FLOPS.add(qr_flops(a.rows(), a.cols(), k));
    if k <= QR_PANEL {
        householder_qr_unblocked(a)
    } else {
        householder_qr_blocked(ctx, a)
    }
}

/// The pre-blocking scalar recurrence: one Householder reflector per column,
/// applied column-by-column with Level-2 loops.
///
/// This is both the direct path for small problems (`min(m, n) ≤ QR_PANEL`)
/// and the pinned pre-blocking baseline the benchmark gate compares the
/// blocked path against.
pub fn householder_qr_unblocked(a: &Matrix) -> QrFactors {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    let mut r = a.clone();
    // Store Householder vectors; v_j has length m - j.
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(k);

    for j in 0..k {
        // Build the Householder vector for column j below the diagonal.
        let mut v: Vec<f64> = (j..m).map(|i| r.get(i, j)).collect();
        let alpha = crate::blas1::nrm2(&v);
        if alpha == 0.0 {
            vs.push(vec![0.0; m - j]);
            continue;
        }
        let sign = if v[0] >= 0.0 { 1.0 } else { -1.0 };
        v[0] += sign * alpha;
        let vnorm = crate::blas1::nrm2(&v);
        if vnorm == 0.0 {
            vs.push(vec![0.0; m - j]);
            continue;
        }
        for x in v.iter_mut() {
            *x /= vnorm;
        }
        // Apply the reflector to the trailing submatrix: R ← (I - 2vvᵀ) R.
        for col in j..n {
            let mut dot = 0.0;
            for (idx, &vi) in v.iter().enumerate() {
                dot += vi * r.get(j + idx, col);
            }
            let s = 2.0 * dot;
            for (idx, &vi) in v.iter().enumerate() {
                let val = r.get(j + idx, col) - s * vi;
                r.set(j + idx, col, val);
            }
        }
        vs.push(v);
    }

    // Extract the k x n upper-triangular R.
    let r_out = Matrix::from_fn(k, n, |i, j| if j >= i { r.get(i, j) } else { 0.0 });

    // Form Q (m x k) by applying the reflectors to the first k columns of I,
    // in reverse order.
    let mut q = Matrix::from_fn(m, k, |i, j| if i == j { 1.0 } else { 0.0 });
    for j in (0..k).rev() {
        let v = &vs[j];
        if v.iter().all(|&x| x == 0.0) {
            continue;
        }
        for col in 0..k {
            let mut dot = 0.0;
            for (idx, &vi) in v.iter().enumerate() {
                dot += vi * q.get(j + idx, col);
            }
            let s = 2.0 * dot;
            for (idx, &vi) in v.iter().enumerate() {
                let val = q.get(j + idx, col) - s * vi;
                q.set(j + idx, col, val);
            }
        }
    }

    QrFactors { q, r: r_out }
}

/// Factors panel columns `j0..j1` of `r` in place with the scalar reflector
/// recurrence, storing unit-norm reflector vectors into columns `j0..j1` of
/// `v` (row-major, leading dimension `k`, rows `j0..m` written) and the
/// compact-WY accumulator into `t` (row-major `nb × nb`, upper-left `pn × pn`
/// fully written). `col` is `m`-length gather scratch, `tdot` is `nb`-length.
///
/// The recurrence per column `j` (global index, `jj = j − j0`):
///
/// * `v_j` = column `j` of `r` below the diagonal, shifted by `sign·‖·‖₂` and
///   normalized to unit norm exactly as in [`householder_qr_unblocked`]; an
///   exactly-zero column yields `v_j = 0` (reflector = identity).
/// * `H_j = I − 2·v_j·v_jᵀ` is applied to panel columns `j..j1` only with the
///   same Level-2 loops as the unblocked path.
/// * `T[0..jj][jj] = −2·T[0..jj][0..jj]·(Vᵀv_j)`, `T[jj][jj] = 2`
///   (`0` for a zero column), sub-diagonal entries written as exact zeros —
///   so `H_{j0}·…·H_j = I − V·T·Vᵀ` holds inductively.
fn factor_panel(
    r: &mut Matrix,
    j0: usize,
    j1: usize,
    v: &mut [f64],
    t: &mut [f64],
    col: &mut [f64],
    tdot: &mut [f64],
) {
    let m = r.rows();
    let k = r.rows().min(r.cols());
    let nb = QR_PANEL;
    let pn = j1 - j0;
    for j in j0..j1 {
        let jj = j - j0;
        let vj = &mut col[..m - j];
        for (idx, x) in vj.iter_mut().enumerate() {
            *x = r.get(j + idx, j);
        }
        let alpha = crate::blas1::nrm2(vj);
        let mut zero = alpha == 0.0;
        if !zero {
            let sign = if vj[0] >= 0.0 { 1.0 } else { -1.0 };
            vj[0] += sign * alpha;
            let vnorm = crate::blas1::nrm2(vj);
            if vnorm == 0.0 {
                zero = true;
            } else {
                for x in vj.iter_mut() {
                    *x /= vnorm;
                }
            }
        }
        if zero {
            vj.fill(0.0);
        } else {
            // Apply H_j to the remaining panel columns j..j1.
            for c in j..j1 {
                let mut dot = 0.0;
                for (idx, &vi) in vj.iter().enumerate() {
                    dot += vi * r.get(j + idx, c);
                }
                let s = 2.0 * dot;
                for (idx, &vi) in vj.iter().enumerate() {
                    let val = r.get(j + idx, c) - s * vi;
                    r.set(j + idx, c, val);
                }
            }
        }
        // Scatter v_j into column j of V (zeros above its start row).
        for i in j0..j {
            v[i * k + j] = 0.0;
        }
        for (idx, &vi) in vj.iter().enumerate() {
            v[(j + idx) * k + j] = vi;
        }
        // T column jj: tdot = V[:, j0..j]ᵀ · v_j (v_j is zero above row j),
        // then T[0..jj][jj] = −2·T·tdot against the upper-triangular block.
        for c in 0..jj {
            let mut dot = 0.0;
            for (idx, &vi) in vj.iter().enumerate() {
                dot += v[(j + idx) * k + (j0 + c)] * vi;
            }
            tdot[c] = dot;
        }
        for row in 0..jj {
            let mut acc = 0.0;
            for c in row..jj {
                acc += t[row * nb + c] * tdot[c];
            }
            t[row * nb + jj] = -2.0 * acc;
        }
        t[jj * nb + jj] = if zero { 0.0 } else { 2.0 };
        for row in jj + 1..pn {
            t[row * nb + jj] = 0.0;
        }
    }
}

/// The blocked compact-WY path (`k > QR_PANEL`). See module docs.
fn householder_qr_blocked(ctx: &ExecContext, a: &Matrix) -> QrFactors {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    let nb = QR_PANEL;
    let np = k.div_ceil(nb);
    let wcols = n.max(k);
    let mut r = a.clone();
    let mut q = Matrix::from_fn(m, k, |i, j| if i == j { 1.0 } else { 0.0 });
    with_scratch(
        [m * k, np * nb * nb, nb * wcols, nb * wcols, m, nb],
        |[vbuf, tbuf, wbuf, w2buf, colbuf, tdot]| {
            for panel in 0..np {
                let j0 = panel * nb;
                let j1 = (j0 + nb).min(k);
                let pn = j1 - j0;
                let t = &mut tbuf[panel * nb * nb..(panel + 1) * nb * nb];
                factor_panel(&mut r, j0, j1, vbuf, t, colbuf, tdot);
                // Trailing update C ← C − V·Tᵀ·(VᵀC) on columns j1..n
                // (Tᵀ because the panel reflectors hit C in ascending order).
                let rows = m - j0;
                let cols = n - j1;
                if cols > 0 {
                    let w = &mut wbuf[..pn * cols];
                    gemm_slices_ctx(
                        ctx,
                        Transpose::Yes,
                        Transpose::No,
                        1.0,
                        &vbuf[j0 * k + j0..],
                        rows,
                        pn,
                        k,
                        &r.as_slice()[j0 * n + j1..],
                        rows,
                        cols,
                        n,
                        0.0,
                        w,
                        cols,
                    );
                    let w2 = &mut w2buf[..pn * cols];
                    gemm_slices_ctx(
                        ctx,
                        Transpose::Yes,
                        Transpose::No,
                        1.0,
                        &tbuf[panel * nb * nb..],
                        pn,
                        pn,
                        nb,
                        &wbuf[..pn * cols],
                        pn,
                        cols,
                        cols,
                        0.0,
                        w2,
                        cols,
                    );
                    gemm_slices_ctx(
                        ctx,
                        Transpose::No,
                        Transpose::No,
                        -1.0,
                        &vbuf[j0 * k + j0..],
                        rows,
                        pn,
                        k,
                        &w2buf[..pn * cols],
                        pn,
                        cols,
                        cols,
                        1.0,
                        &mut r.as_mut_slice()[j0 * n + j1..],
                        n,
                    );
                }
            }
            // Form Q by applying the block reflectors to I(m×k) in reverse
            // panel order: Q ← Q − V·(T·(VᵀQ)).
            for panel in (0..np).rev() {
                let j0 = panel * nb;
                let j1 = (j0 + nb).min(k);
                let pn = j1 - j0;
                let rows = m - j0;
                let w = &mut wbuf[..pn * k];
                gemm_slices_ctx(
                    ctx,
                    Transpose::Yes,
                    Transpose::No,
                    1.0,
                    &vbuf[j0 * k + j0..],
                    rows,
                    pn,
                    k,
                    &q.as_slice()[j0 * k..],
                    rows,
                    k,
                    k,
                    0.0,
                    w,
                    k,
                );
                let w2 = &mut w2buf[..pn * k];
                gemm_slices_ctx(
                    ctx,
                    Transpose::No,
                    Transpose::No,
                    1.0,
                    &tbuf[panel * nb * nb..],
                    pn,
                    pn,
                    nb,
                    &wbuf[..pn * k],
                    pn,
                    k,
                    k,
                    0.0,
                    w2,
                    k,
                );
                gemm_slices_ctx(
                    ctx,
                    Transpose::No,
                    Transpose::No,
                    -1.0,
                    &vbuf[j0 * k + j0..],
                    rows,
                    pn,
                    k,
                    &w2buf[..pn * k],
                    pn,
                    k,
                    k,
                    1.0,
                    &mut q.as_mut_slice()[j0 * k..],
                    k,
                );
            }
        },
    );
    let r_out = Matrix::from_fn(k, n, |i, j| if j >= i { r.get(i, j) } else { 0.0 });
    QrFactors { q, r: r_out }
}

/// Executable statement of the QR determinism contract.
///
/// Restates both paths self-containedly: the small-problem path *is* the
/// pre-blocking recurrence ([`householder_qr_unblocked`]), and the blocked
/// path is re-derived here with plain `Vec` storage and
/// [`crate::gemm::gemm_slices_reference`] for every Level-3 update. The
/// production [`householder_qr`] must match this function bit for bit on
/// every input, every SIMD tier, every `TUCKER_BLOCK` setting, and every
/// thread count.
pub fn householder_qr_reference(a: &Matrix) -> QrFactors {
    use crate::gemm::gemm_slices_reference;
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    if k <= QR_PANEL {
        return householder_qr_unblocked(a);
    }
    let nb = QR_PANEL;
    let np = k.div_ceil(nb);
    let mut r = a.clone();
    let mut v = vec![0.0f64; m * k]; // row-major, leading dimension k
    let mut tmat = vec![0.0f64; np * nb * nb];

    for panel in 0..np {
        let j0 = panel * nb;
        let j1 = (j0 + nb).min(k);
        let pn = j1 - j0;
        let t = &mut tmat[panel * nb * nb..(panel + 1) * nb * nb];
        for j in j0..j1 {
            let jj = j - j0;
            let mut vj: Vec<f64> = (j..m).map(|i| r.get(i, j)).collect();
            let alpha = crate::blas1::nrm2(&vj);
            let mut zero = alpha == 0.0;
            if !zero {
                let sign = if vj[0] >= 0.0 { 1.0 } else { -1.0 };
                vj[0] += sign * alpha;
                let vnorm = crate::blas1::nrm2(&vj);
                if vnorm == 0.0 {
                    zero = true;
                } else {
                    for x in vj.iter_mut() {
                        *x /= vnorm;
                    }
                }
            }
            if zero {
                vj.fill(0.0);
            } else {
                for c in j..j1 {
                    let mut dot = 0.0;
                    for (idx, &vi) in vj.iter().enumerate() {
                        dot += vi * r.get(j + idx, c);
                    }
                    let s = 2.0 * dot;
                    for (idx, &vi) in vj.iter().enumerate() {
                        let val = r.get(j + idx, c) - s * vi;
                        r.set(j + idx, c, val);
                    }
                }
            }
            for i in j0..j {
                v[i * k + j] = 0.0;
            }
            for (idx, &vi) in vj.iter().enumerate() {
                v[(j + idx) * k + j] = vi;
            }
            let mut tdot = vec![0.0f64; jj];
            for (c, out) in tdot.iter_mut().enumerate() {
                let mut dot = 0.0;
                for (idx, &vi) in vj.iter().enumerate() {
                    dot += v[(j + idx) * k + (j0 + c)] * vi;
                }
                *out = dot;
            }
            for row in 0..jj {
                let mut acc = 0.0;
                for c in row..jj {
                    acc += t[row * nb + c] * tdot[c];
                }
                t[row * nb + jj] = -2.0 * acc;
            }
            t[jj * nb + jj] = if zero { 0.0 } else { 2.0 };
            for row in jj + 1..pn {
                t[row * nb + jj] = 0.0;
            }
        }
        let rows = m - j0;
        let cols = n - j1;
        if cols > 0 {
            let mut w = vec![0.0f64; pn * cols];
            gemm_slices_reference(
                Transpose::Yes,
                Transpose::No,
                1.0,
                &v[j0 * k + j0..],
                rows,
                pn,
                k,
                &r.as_slice()[j0 * n + j1..],
                rows,
                cols,
                n,
                0.0,
                &mut w,
                cols,
            );
            let mut w2 = vec![0.0f64; pn * cols];
            gemm_slices_reference(
                Transpose::Yes,
                Transpose::No,
                1.0,
                &tmat[panel * nb * nb..],
                pn,
                pn,
                nb,
                &w,
                pn,
                cols,
                cols,
                0.0,
                &mut w2,
                cols,
            );
            gemm_slices_reference(
                Transpose::No,
                Transpose::No,
                -1.0,
                &v[j0 * k + j0..],
                rows,
                pn,
                k,
                &w2,
                pn,
                cols,
                cols,
                1.0,
                &mut r.as_mut_slice()[j0 * n + j1..],
                n,
            );
        }
    }

    let r_out = Matrix::from_fn(k, n, |i, j| if j >= i { r.get(i, j) } else { 0.0 });
    let mut q = Matrix::from_fn(m, k, |i, j| if i == j { 1.0 } else { 0.0 });
    for panel in (0..np).rev() {
        let j0 = panel * nb;
        let j1 = (j0 + nb).min(k);
        let pn = j1 - j0;
        let rows = m - j0;
        let mut w = vec![0.0f64; pn * k];
        gemm_slices_reference(
            Transpose::Yes,
            Transpose::No,
            1.0,
            &v[j0 * k + j0..],
            rows,
            pn,
            k,
            &q.as_slice()[j0 * k..],
            rows,
            k,
            k,
            0.0,
            &mut w,
            k,
        );
        let mut w2 = vec![0.0f64; pn * k];
        gemm_slices_reference(
            Transpose::No,
            Transpose::No,
            1.0,
            &tmat[panel * nb * nb..],
            pn,
            pn,
            nb,
            &w,
            pn,
            k,
            k,
            0.0,
            &mut w2,
            k,
        );
        gemm_slices_reference(
            Transpose::No,
            Transpose::No,
            -1.0,
            &v[j0 * k + j0..],
            rows,
            pn,
            k,
            &w2,
            pn,
            k,
            k,
            1.0,
            &mut q.as_mut_slice()[j0 * k..],
            k,
        );
    }
    QrFactors { q, r: r_out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, Transpose};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
        Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn check_qr(a: &Matrix, tol: f64) {
        let QrFactors { q, r } = householder_qr(a);
        let k = a.rows().min(a.cols());
        assert_eq!(q.shape(), (a.rows(), k));
        assert_eq!(r.shape(), (k, a.cols()));
        assert!(q.has_orthonormal_columns(tol), "Q not orthonormal");
        // R upper triangular
        for i in 0..k {
            for j in 0..i.min(r.cols()) {
                assert!(r.get(i, j).abs() < tol, "R not upper triangular");
            }
        }
        let rec = gemm(Transpose::No, Transpose::No, 1.0, &q, &r);
        let err = a.sub(&rec).frob_norm() / (1.0 + a.frob_norm());
        assert!(err < tol, "QR reconstruction error {err}");
    }

    #[test]
    fn square_matrices() {
        let mut rng = StdRng::seed_from_u64(31);
        for n in [1usize, 2, 5, 20, 50] {
            check_qr(&random_matrix(&mut rng, n, n), 1e-10);
        }
    }

    #[test]
    fn blocked_sizes_stay_orthonormal() {
        let mut rng = StdRng::seed_from_u64(36);
        // Everything here crosses QR_PANEL, including non-multiples of it.
        check_qr(&random_matrix(&mut rng, 96, 96), 1e-9);
        check_qr(&random_matrix(&mut rng, 97, 61), 1e-9);
        check_qr(&random_matrix(&mut rng, 61, 97), 1e-9);
        check_qr(&random_matrix(&mut rng, 130, 33), 1e-9);
    }

    #[test]
    fn tall_matrices() {
        let mut rng = StdRng::seed_from_u64(32);
        check_qr(&random_matrix(&mut rng, 40, 7), 1e-10);
        check_qr(&random_matrix(&mut rng, 100, 3), 1e-10);
    }

    #[test]
    fn wide_matrices() {
        let mut rng = StdRng::seed_from_u64(33);
        check_qr(&random_matrix(&mut rng, 6, 25), 1e-10);
    }

    #[test]
    fn rank_deficient_matrix() {
        // Two identical columns.
        let a = Matrix::from_fn(8, 3, |i, j| if j == 2 { i as f64 } else { (i * 2) as f64 });
        let QrFactors { q, r } = householder_qr(&a);
        let rec = gemm(Transpose::No, Transpose::No, 1.0, &q, &r);
        assert!(a.sub(&rec).frob_norm() < 1e-9);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(5, 3);
        let QrFactors { q, r } = householder_qr(&a);
        let rec = gemm(Transpose::No, Transpose::No, 1.0, &q, &r);
        assert!(rec.frob_norm() < 1e-12);
    }

    #[test]
    fn identity_qr() {
        let a = Matrix::identity(4);
        check_qr(&a, 1e-12);
    }

    fn assert_bitwise_eq(x: &QrFactors, y: &QrFactors, what: &str) {
        assert_eq!(x.q.shape(), y.q.shape(), "{what}: Q shape");
        assert_eq!(x.r.shape(), y.r.shape(), "{what}: R shape");
        for (i, (a, b)) in x.q.as_slice().iter().zip(y.q.as_slice().iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: Q[{i}] {a} vs {b}");
        }
        for (i, (a, b)) in x.r.as_slice().iter().zip(y.r.as_slice().iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: R[{i}] {a} vs {b}");
        }
    }

    #[test]
    fn blocked_path_matches_the_reference_bitwise() {
        let mut rng = StdRng::seed_from_u64(40);
        // Shapes straddling panel edges: exact multiples of QR_PANEL, one
        // more / one less, tall, and wide.
        for (m, n) in [
            (33usize, 33usize),
            (64, 64),
            (65, 63),
            (96, 40),
            (40, 96),
            (100, 97),
        ] {
            let a = random_matrix(&mut rng, m, n);
            let fast = householder_qr(&a);
            let refr = householder_qr_reference(&a);
            assert_bitwise_eq(&fast, &refr, &format!("{m}x{n}"));
        }
    }

    #[test]
    fn small_path_is_the_unblocked_recurrence_bitwise() {
        let mut rng = StdRng::seed_from_u64(41);
        for (m, n) in [(8usize, 8usize), (32, 32), (40, 20), (20, 40)] {
            let a = random_matrix(&mut rng, m, n);
            let fast = householder_qr(&a);
            let unb = householder_qr_unblocked(&a);
            assert_bitwise_eq(&fast, &unb, &format!("{m}x{n}"));
            let refr = householder_qr_reference(&a);
            assert_bitwise_eq(&refr, &unb, &format!("reference {m}x{n}"));
        }
    }

    #[test]
    fn zero_columns_inside_blocked_panels() {
        // Zero columns land mid-panel and at a panel edge; the compact-WY
        // T must treat them as identity reflectors.
        let mut rng = StdRng::seed_from_u64(42);
        let mut a = random_matrix(&mut rng, 70, 50);
        for i in 0..70 {
            a.set(i, 10, 0.0);
            a.set(i, 32, 0.0);
            a.set(i, 33, 0.0);
        }
        let fast = householder_qr(&a);
        let refr = householder_qr_reference(&a);
        assert_bitwise_eq(&fast, &refr, "zero columns");
        let rec = gemm(Transpose::No, Transpose::No, 1.0, &fast.q, &fast.r);
        let err = a.sub(&rec).frob_norm() / (1.0 + a.frob_norm());
        assert!(err < 1e-9, "reconstruction error {err}");
    }

    #[test]
    fn blocked_bits_are_invariant_to_gemm_blocking() {
        let mut rng = StdRng::seed_from_u64(43);
        let a = random_matrix(&mut rng, 80, 72);
        let base = householder_qr(&a);
        let prev = crate::blocking::force_blocking(crate::blocking::Blocking {
            mc: 16,
            kc: 16,
            nc: 16,
        });
        let shrunk = householder_qr(&a);
        crate::blocking::force_blocking(prev);
        assert_bitwise_eq(&base, &shrunk, "TUCKER_BLOCK shrink");
    }
}
