//! Householder QR factorization.
//!
//! Sec. IX of the paper notes that for accuracy targets near machine precision
//! the Gram-matrix approach loses half the digits, and proposes computing the
//! SVD of the (tall, skinny) unfolding via a QR preprocessing step "at roughly
//! twice the cost". This module provides that QR step; [`crate::svd`] builds
//! the direct-SVD alternative on top of it.

use crate::matrix::Matrix;

/// Result of a QR factorization `A = Q · R` with `Q` having orthonormal columns.
#[derive(Debug, Clone)]
pub struct QrFactors {
    /// `m × k` matrix with orthonormal columns (`k = min(m, n)` for the thin QR).
    pub q: Matrix,
    /// `k × n` upper-triangular factor.
    pub r: Matrix,
}

/// Thin Householder QR of an `m × n` matrix (`m ≥ n` or `m < n` both allowed).
///
/// Returns `Q` of size `m × k` and `R` of size `k × n` with `k = min(m, n)`,
/// such that `A ≈ Q·R` and `QᵀQ = I`.
pub fn householder_qr(a: &Matrix) -> QrFactors {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    let mut r = a.clone();
    // Store Householder vectors; v_j has length m - j.
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(k);

    for j in 0..k {
        // Build the Householder vector for column j below the diagonal.
        let mut v: Vec<f64> = (j..m).map(|i| r.get(i, j)).collect();
        let alpha = crate::blas1::nrm2(&v);
        if alpha == 0.0 {
            vs.push(vec![0.0; m - j]);
            continue;
        }
        let sign = if v[0] >= 0.0 { 1.0 } else { -1.0 };
        v[0] += sign * alpha;
        let vnorm = crate::blas1::nrm2(&v);
        if vnorm == 0.0 {
            vs.push(vec![0.0; m - j]);
            continue;
        }
        for x in v.iter_mut() {
            *x /= vnorm;
        }
        // Apply the reflector to the trailing submatrix: R ← (I - 2vvᵀ) R.
        for col in j..n {
            let mut dot = 0.0;
            for (idx, &vi) in v.iter().enumerate() {
                dot += vi * r.get(j + idx, col);
            }
            let s = 2.0 * dot;
            for (idx, &vi) in v.iter().enumerate() {
                let val = r.get(j + idx, col) - s * vi;
                r.set(j + idx, col, val);
            }
        }
        vs.push(v);
    }

    // Extract the k x n upper-triangular R.
    let r_out = Matrix::from_fn(k, n, |i, j| if j >= i { r.get(i, j) } else { 0.0 });

    // Form Q (m x k) by applying the reflectors to the first k columns of I,
    // in reverse order.
    let mut q = Matrix::from_fn(m, k, |i, j| if i == j { 1.0 } else { 0.0 });
    for j in (0..k).rev() {
        let v = &vs[j];
        if v.iter().all(|&x| x == 0.0) {
            continue;
        }
        for col in 0..k {
            let mut dot = 0.0;
            for (idx, &vi) in v.iter().enumerate() {
                dot += vi * q.get(j + idx, col);
            }
            let s = 2.0 * dot;
            for (idx, &vi) in v.iter().enumerate() {
                let val = q.get(j + idx, col) - s * vi;
                q.set(j + idx, col, val);
            }
        }
    }

    QrFactors { q, r: r_out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, Transpose};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
        Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn check_qr(a: &Matrix, tol: f64) {
        let QrFactors { q, r } = householder_qr(a);
        let k = a.rows().min(a.cols());
        assert_eq!(q.shape(), (a.rows(), k));
        assert_eq!(r.shape(), (k, a.cols()));
        assert!(q.has_orthonormal_columns(tol), "Q not orthonormal");
        // R upper triangular
        for i in 0..k {
            for j in 0..i.min(r.cols()) {
                assert!(r.get(i, j).abs() < tol, "R not upper triangular");
            }
        }
        let rec = gemm(Transpose::No, Transpose::No, 1.0, &q, &r);
        let err = a.sub(&rec).frob_norm() / (1.0 + a.frob_norm());
        assert!(err < tol, "QR reconstruction error {err}");
    }

    #[test]
    fn square_matrices() {
        let mut rng = StdRng::seed_from_u64(31);
        for n in [1usize, 2, 5, 20, 50] {
            check_qr(&random_matrix(&mut rng, n, n), 1e-10);
        }
    }

    #[test]
    fn tall_matrices() {
        let mut rng = StdRng::seed_from_u64(32);
        check_qr(&random_matrix(&mut rng, 40, 7), 1e-10);
        check_qr(&random_matrix(&mut rng, 100, 3), 1e-10);
    }

    #[test]
    fn wide_matrices() {
        let mut rng = StdRng::seed_from_u64(33);
        check_qr(&random_matrix(&mut rng, 6, 25), 1e-10);
    }

    #[test]
    fn rank_deficient_matrix() {
        // Two identical columns.
        let a = Matrix::from_fn(8, 3, |i, j| if j == 2 { i as f64 } else { (i * 2) as f64 });
        let QrFactors { q, r } = householder_qr(&a);
        let rec = gemm(Transpose::No, Transpose::No, 1.0, &q, &r);
        assert!(a.sub(&rec).frob_norm() < 1e-9);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(5, 3);
        let QrFactors { q, r } = householder_qr(&a);
        let rec = gemm(Transpose::No, Transpose::No, 1.0, &q, &r);
        assert!(rec.frob_norm() < 1e-12);
    }

    #[test]
    fn identity_qr() {
        let a = Matrix::identity(4);
        check_qr(&a, 1e-12);
    }
}
