//! One-sided Jacobi singular value decomposition, blocked over the packed
//! GEMM kernels.
//!
//! The paper's kernels use the Gram-matrix + eigendecomposition route to obtain
//! left singular vectors, which is accurate whenever the target error ε is well
//! above √(machine precision) (Sec. II-B). For ε near machine precision the
//! paper proposes a direct SVD (Sec. IX). This module supplies that option:
//! a thin SVD computed by one-sided Jacobi rotations, optionally preceded by a
//! QR factorization when the matrix is very tall (the exact scheme sketched in
//! the paper's conclusion).
//!
//! # Blocking
//!
//! For inputs whose (dispatched) column count exceeds [`SVD_BLOCKED_MIN`],
//! the sweeps run over [`SVD_BLOCK`]-wide *column blocks*: each pair's
//! `2·SVD_BLOCK`-column Gram matrix is formed with a Level-3
//! [`crate::gemm`] call, its eigenvectors (from the scalar solver
//! [`crate::eig::sym_eig_unblocked`]) are the block rotation, and the
//! rotation is applied to the `W`/`V` column groups with two more GEMMs —
//! all flowing through the packed microkernels. Smaller problems keep the
//! pre-blocking scalar sweeps verbatim.
//!
//! # Determinism contract
//!
//! The blocked recurrence is stated executably by [`jacobi_svd_reference`];
//! the production path must match it bit for bit. As with GEMM/QR/eig, the
//! bits are invariant to SIMD tier, `MC/KC/NC` blocking (including
//! `TUCKER_BLOCK` overrides), and thread count; [`SVD_BLOCK`] is a fixed
//! constant, never autotuned.

use crate::gemm::{gemm_slices_ctx, Transpose};
use crate::matrix::Matrix;
use crate::pack::with_scratch;
use tucker_exec::ExecContext;
use tucker_obs::metrics::Counter;

/// Total `jacobi_svd` invocations (top-level, not internal dispatch).
pub static SVD_CALLS: Counter = Counter::new("linalg.svd.calls");
/// Nominal flops of those calls, `4mk² + 8k³` per call (`k = min(m, n)`) —
/// the standard accounting for a thin SVD with both factor matrices.
pub static SVD_FLOPS: Counter = Counter::new("linalg.svd.flops");

/// Column-block width of the blocked one-sided Jacobi path (pivot Gram
/// subproblems are `2·SVD_BLOCK` square). Fixed — part of the determinism
/// contract, never autotuned.
pub const SVD_BLOCK: usize = 32;

/// Largest (dispatched) column count still swept with scalar rotations.
/// Above this the blocked path takes over. Fixed — part of the determinism
/// contract. (Set where the blocked sweeps win on full-rank inputs on this
/// class of host; below it the scalar sweeps are simply faster.)
pub const SVD_BLOCKED_MIN: usize = 192;

/// Sweep cap shared by the scalar and blocked paths.
const SVD_MAX_SWEEPS: usize = 60;

/// Relative off-diagonal tolerance of the one-sided sweeps (both paths).
const SVD_TOL: f64 = 1e-14;

/// Thin SVD `A = U · diag(s) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m × k`.
    pub u: Matrix,
    /// Singular values in descending order, length `k = min(m, n)`.
    pub s: Vec<f64>,
    /// Right singular vectors, `n × k`.
    pub v: Matrix,
}

/// Computes the thin SVD of `a` by one-sided Jacobi.
///
/// When `a` has at least twice as many rows as columns, a QR factorization is
/// performed first and the Jacobi sweeps run on the small `R` factor — this is
/// the "QR as preprocessing" strategy from the paper's Sec. IX. Results are
/// bit-identical to [`jacobi_svd_reference`].
pub fn jacobi_svd(a: &Matrix) -> Svd {
    jacobi_svd_ctx(ExecContext::global(), a)
}

/// [`jacobi_svd`] with an explicit execution context for the Level-3
/// updates. The context only affects scheduling, never bits.
pub fn jacobi_svd_ctx(ctx: &ExecContext, a: &Matrix) -> Svd {
    SVD_CALLS.add(1);
    let (m, k) = (a.rows() as f64, a.rows().min(a.cols()) as f64);
    SVD_FLOPS.add((4.0 * m * k * k + 8.0 * k * k * k) as u64);
    svd_inner(ctx, a)
}

/// Shape dispatch shared by the public entry and its recursion (no counter
/// bumps here).
fn svd_inner(ctx: &ExecContext, a: &Matrix) -> Svd {
    let m = a.rows();
    let n = a.cols();
    if m == 0 || n == 0 {
        return Svd {
            u: Matrix::zeros(m, 0),
            s: vec![],
            v: Matrix::zeros(n, 0),
        };
    }
    if m >= 2 * n {
        // Tall-skinny: A = Q R, SVD(R) = Ur S Vᵀ, so U = Q Ur.
        let qr = crate::qr::householder_qr_ctx(ctx, a);
        let inner = svd_inner(ctx, &qr.r);
        let mut u = Matrix::zeros(m, inner.u.cols());
        gemm_slices_ctx(
            ctx,
            Transpose::No,
            Transpose::No,
            1.0,
            qr.q.as_slice(),
            qr.q.rows(),
            qr.q.cols(),
            qr.q.cols(),
            inner.u.as_slice(),
            inner.u.rows(),
            inner.u.cols(),
            inner.u.cols(),
            0.0,
            u.as_mut_slice(),
            inner.u.cols(),
        );
        return Svd {
            u,
            s: inner.s,
            v: inner.v,
        };
    }
    if n > m {
        // Work on the transpose and swap U/V.
        let at = a.transpose();
        let svd_t = svd_inner(ctx, &at);
        return Svd {
            u: svd_t.v,
            s: svd_t.s,
            v: svd_t.u,
        };
    }
    if n <= SVD_BLOCKED_MIN {
        jacobi_svd_dense_scalar(a)
    } else {
        jacobi_svd_dense_blocked(ctx, a)
    }
}

/// The pre-blocking behavior end to end: scalar-rotation sweeps, and the
/// tall-skinny preprocessing done with the unblocked QR.
///
/// This is the pinned pre-blocking baseline the benchmark compares the
/// blocked path against (it is *not* required to match [`jacobi_svd`]
/// bitwise — the blocked determinism contract is [`jacobi_svd_reference`]).
pub fn jacobi_svd_unblocked(a: &Matrix) -> Svd {
    use crate::gemm::gemm;
    let m = a.rows();
    let n = a.cols();
    if m == 0 || n == 0 {
        return Svd {
            u: Matrix::zeros(m, 0),
            s: vec![],
            v: Matrix::zeros(n, 0),
        };
    }
    if m >= 2 * n {
        let qr = crate::qr::householder_qr_unblocked(a);
        let inner = jacobi_svd_unblocked(&qr.r);
        let u = gemm(Transpose::No, Transpose::No, 1.0, &qr.q, &inner.u);
        return Svd {
            u,
            s: inner.s,
            v: inner.v,
        };
    }
    if n > m {
        let at = a.transpose();
        let svd_t = jacobi_svd_unblocked(&at);
        return Svd {
            u: svd_t.v,
            s: svd_t.s,
            v: svd_t.u,
        };
    }
    jacobi_svd_dense_scalar(a)
}

/// One-sided scalar Jacobi sweeps (the pre-blocking recurrence, unchanged).
/// Direct path for dispatched column counts `≤ SVD_BLOCKED_MIN`.
fn jacobi_svd_dense_scalar(a: &Matrix) -> Svd {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    // Work matrix W whose columns are rotated toward mutual orthogonality.
    let mut w = a.clone();
    let mut v = Matrix::identity(n);

    for _sweep in 0..SVD_MAX_SWEEPS {
        let mut converged = true;
        for p in 0..n {
            for q in p + 1..n {
                // Compute the 2x2 Gram submatrix of columns p and q.
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = 0.0;
                for i in 0..m {
                    let wp = w.get(i, p);
                    let wq = w.get(i, q);
                    app += wp * wp;
                    aqq += wq * wq;
                    apq += wp * wq;
                }
                if apq.abs() > SVD_TOL * (app * aqq).sqrt().max(1e-300) {
                    converged = false;
                    // Jacobi rotation that annihilates apq.
                    let tau = (aqq - app) / (2.0 * apq);
                    let t = if tau >= 0.0 {
                        1.0 / (tau + (1.0 + tau * tau).sqrt())
                    } else {
                        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    for i in 0..m {
                        let wp = w.get(i, p);
                        let wq = w.get(i, q);
                        w.set(i, p, c * wp - s * wq);
                        w.set(i, q, s * wp + c * wq);
                    }
                    for i in 0..n {
                        let vp = v.get(i, p);
                        let vq = v.get(i, q);
                        v.set(i, p, c * vp - s * vq);
                        v.set(i, q, s * vp + c * vq);
                    }
                }
            }
        }
        if converged {
            break;
        }
    }
    extract_svd(&w, &v, k)
}

/// Shared epilogue of the sweep paths (pure selection + normalization):
/// singular values are the column norms of `W`; `U` columns are the
/// normalized `W` columns, ordered by descending singular value.
fn extract_svd(w: &Matrix, v: &Matrix, k: usize) -> Svd {
    let m = w.rows();
    let n = w.cols();
    let mut sv: Vec<(f64, usize)> = (0..n)
        .map(|j| {
            let col: Vec<f64> = (0..m).map(|i| w.get(i, j)).collect();
            (crate::blas1::nrm2(&col), j)
        })
        .collect();
    sv.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let kept: Vec<(f64, usize)> = sv.into_iter().take(k).collect();

    let s: Vec<f64> = kept.iter().map(|&(sv, _)| sv).collect();
    let mut u = Matrix::zeros(m, k);
    let mut v_out = Matrix::zeros(n, k);
    for (out_j, &(sval, j)) in kept.iter().enumerate() {
        if sval > 1e-300 {
            for i in 0..m {
                u.set(i, out_j, w.get(i, j) / sval);
            }
        } else {
            // Null singular value: leave a zero column (caller treats rank as reduced).
        }
        for i in 0..n {
            v_out.set(i, out_j, v.get(i, j));
        }
    }
    Svd { u, s, v: v_out }
}

/// `[start, end)` column ranges of `nb`-wide Jacobi blocks.
fn block_ranges(n: usize, nb: usize) -> Vec<(usize, usize)> {
    (0..n.div_ceil(nb))
        .map(|b| (b * nb, ((b + 1) * nb).min(n)))
        .collect()
}

/// Block one-sided Jacobi sweeps (dispatched column count
/// `> SVD_BLOCKED_MIN`). See module docs; the recurrence per pivot pair
/// `(p, q)` of column blocks (`s = pn + qn` columns total):
///
/// 1. `G = Wₚᵩᵀ·Wₚᵩ` (`s × s` Gram of the gathered column group), one GEMM.
/// 2. Skip if the pair passes [`pair_is_converged`] — the block
///    generalization of the scalar rotation test, floored at the
///    machine-noise scale of `‖A‖F²`.
/// 3. `U` = eigenvectors of `G` from the scalar solver
///    ([`crate::eig::sym_eig_unblocked`]).
/// 4. `W[:, p∪q] ← W[:, p∪q]·U` and `V[:, p∪q] ← V[:, p∪q]·U`, two GEMMs.
fn jacobi_svd_dense_blocked(ctx: &ExecContext, a: &Matrix) -> Svd {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    let blocks = block_ranges(n, SVD_BLOCK);
    let nblk = blocks.len();
    let smax = 2 * SVD_BLOCK;
    let rows_max = m.max(n);
    let mut w = a.clone();
    let mut v = Matrix::identity(n);
    // ‖A‖F² in pinned row-major order: invariant under the sweeps' rotations,
    // computed once as the absolute scale of the convergence test.
    let mut tfrob = 0.0;
    for i in 0..m {
        for &x in w.row(i) {
            tfrob += x * x;
        }
    }
    with_scratch(
        [rows_max * smax, rows_max * smax, smax * smax],
        |[g, h, gram]| {
            for _sweep in 0..SVD_MAX_SWEEPS {
                let mut converged = true;
                for bp in 0..nblk {
                    for bq in bp + 1..nblk {
                        let (p0, p1) = blocks[bp];
                        let (q0, q1) = blocks[bq];
                        let pn = p1 - p0;
                        let s = (p1 - p0) + (q1 - q0);
                        // Gather the column group Wₚᵩ (m × s).
                        for i in 0..m {
                            let row = w.row(i);
                            let dst = &mut g[i * s..(i + 1) * s];
                            dst[..pn].copy_from_slice(&row[p0..p1]);
                            dst[pn..].copy_from_slice(&row[q0..q1]);
                        }
                        let gr = &mut gram[..s * s];
                        gemm_slices_ctx(
                            ctx,
                            Transpose::Yes,
                            Transpose::No,
                            1.0,
                            &g[..m * s],
                            m,
                            s,
                            s,
                            &g[..m * s],
                            m,
                            s,
                            s,
                            0.0,
                            gr,
                            s,
                        );
                        if pair_is_converged(gr, pn, s, tfrob) {
                            continue;
                        }
                        converged = false;
                        let p = Matrix::from_fn(s, s, |i, j| gr[i * s + j]);
                        let u = crate::eig::sym_eig_unblocked(&p).vectors;
                        // W[:, p∪q] ← Wₚᵩ·U.
                        gemm_slices_ctx(
                            ctx,
                            Transpose::No,
                            Transpose::No,
                            1.0,
                            &g[..m * s],
                            m,
                            s,
                            s,
                            u.as_slice(),
                            s,
                            s,
                            s,
                            0.0,
                            &mut h[..m * s],
                            s,
                        );
                        for i in 0..m {
                            let src = &h[i * s..(i + 1) * s];
                            let row = w.row_mut(i);
                            row[p0..p1].copy_from_slice(&src[..pn]);
                            row[q0..q1].copy_from_slice(&src[pn..]);
                        }
                        // V[:, p∪q] ← Vₚᵩ·U.
                        for i in 0..n {
                            let row = v.row(i);
                            let dst = &mut g[i * s..(i + 1) * s];
                            dst[..pn].copy_from_slice(&row[p0..p1]);
                            dst[pn..].copy_from_slice(&row[q0..q1]);
                        }
                        gemm_slices_ctx(
                            ctx,
                            Transpose::No,
                            Transpose::No,
                            1.0,
                            &g[..n * s],
                            n,
                            s,
                            s,
                            u.as_slice(),
                            s,
                            s,
                            s,
                            0.0,
                            &mut h[..n * s],
                            s,
                        );
                        for i in 0..n {
                            let src = &h[i * s..(i + 1) * s];
                            let row = v.row_mut(i);
                            row[p0..p1].copy_from_slice(&src[..pn]);
                            row[q0..q1].copy_from_slice(&src[pn..]);
                        }
                    }
                }
                if converged {
                    break;
                }
            }
        },
    );
    extract_svd(&w, &v, k)
}

/// The blocked rotation test: coupling-block norm against the geometric mean
/// of the two diagonal-block traces (squares summed row-major — pinned
/// because it steers control flow, which steers bits).
///
/// The relative test alone stalls on rank-deficient inputs: a column block of
/// pure rounding noise is re-randomized by every pivot eigensolve, so its
/// coupling never drops below `SVD_TOL` *relative to its own (noise-sized)
/// trace*. `tfrob = ‖A‖F²` supplies the absolute scale: couplings below
/// `SVD_TOL²·‖A‖F²` are machine noise for the overall problem and count as
/// converged, which leaves the relative accuracy of every singular value
/// above that floor untouched.
fn pair_is_converged(gram: &[f64], pn: usize, s: usize, tfrob: f64) -> bool {
    let mut cp = 0.0;
    for i in 0..pn {
        for j in pn..s {
            cp += gram[i * s + j] * gram[i * s + j];
        }
    }
    let mut tp = 0.0;
    for t in 0..pn {
        tp += gram[t * s + t];
    }
    let mut tq = 0.0;
    for t in pn..s {
        tq += gram[t * s + t];
    }
    cp.sqrt() <= SVD_TOL * (tp * tq).sqrt().max(SVD_TOL * tfrob)
}

/// Executable statement of the blocked SVD determinism contract.
///
/// Restates the production dispatch with the reference building blocks:
/// [`crate::qr::householder_qr_reference`] for the tall-skinny preprocessing,
/// plain `Vec` storage and [`crate::gemm::gemm_slices_reference`] for every
/// Level-3 update of the blocked sweeps, the scalar sweep path
/// ([`jacobi_svd`]'s own direct path) for small dispatched problems, and the
/// scalar solver [`crate::eig::sym_eig_unblocked`] for the pivot Gram
/// eigenproblems. The production [`jacobi_svd`] must match this function bit
/// for bit on every input, every SIMD tier, every `TUCKER_BLOCK` setting,
/// and every thread count.
pub fn jacobi_svd_reference(a: &Matrix) -> Svd {
    use crate::gemm::gemm_slices_reference;
    let m = a.rows();
    let n = a.cols();
    if m == 0 || n == 0 {
        return Svd {
            u: Matrix::zeros(m, 0),
            s: vec![],
            v: Matrix::zeros(n, 0),
        };
    }
    if m >= 2 * n {
        let qr = crate::qr::householder_qr_reference(a);
        let inner = jacobi_svd_reference(&qr.r);
        let mut u = Matrix::zeros(m, inner.u.cols());
        gemm_slices_reference(
            Transpose::No,
            Transpose::No,
            1.0,
            qr.q.as_slice(),
            qr.q.rows(),
            qr.q.cols(),
            qr.q.cols(),
            inner.u.as_slice(),
            inner.u.rows(),
            inner.u.cols(),
            inner.u.cols(),
            0.0,
            u.as_mut_slice(),
            inner.u.cols(),
        );
        return Svd {
            u,
            s: inner.s,
            v: inner.v,
        };
    }
    if n > m {
        let at = a.transpose();
        let svd_t = jacobi_svd_reference(&at);
        return Svd {
            u: svd_t.v,
            s: svd_t.s,
            v: svd_t.u,
        };
    }
    if n <= SVD_BLOCKED_MIN {
        return jacobi_svd_dense_scalar(a);
    }
    // Blocked sweeps, restated with Vec storage + reference GEMMs.
    let k = m.min(n);
    let blocks = block_ranges(n, SVD_BLOCK);
    let nblk = blocks.len();
    let mut w = a.clone();
    let mut v = Matrix::identity(n);
    let mut tfrob = 0.0;
    for i in 0..m {
        for &x in w.row(i) {
            tfrob += x * x;
        }
    }
    for _sweep in 0..SVD_MAX_SWEEPS {
        let mut converged = true;
        for bp in 0..nblk {
            for bq in bp + 1..nblk {
                let (p0, p1) = blocks[bp];
                let (q0, q1) = blocks[bq];
                let pn = p1 - p0;
                let s = (p1 - p0) + (q1 - q0);
                let mut g = vec![0.0f64; m.max(n) * s];
                for i in 0..m {
                    for (t, j) in (p0..p1).chain(q0..q1).enumerate() {
                        g[i * s + t] = w.get(i, j);
                    }
                }
                let mut gram = vec![0.0f64; s * s];
                gemm_slices_reference(
                    Transpose::Yes,
                    Transpose::No,
                    1.0,
                    &g[..m * s],
                    m,
                    s,
                    s,
                    &g[..m * s],
                    m,
                    s,
                    s,
                    0.0,
                    &mut gram,
                    s,
                );
                if pair_is_converged(&gram, pn, s, tfrob) {
                    continue;
                }
                converged = false;
                let p = Matrix::from_fn(s, s, |i, j| gram[i * s + j]);
                let u = crate::eig::sym_eig_unblocked(&p).vectors;
                let mut h = vec![0.0f64; m.max(n) * s];
                gemm_slices_reference(
                    Transpose::No,
                    Transpose::No,
                    1.0,
                    &g[..m * s],
                    m,
                    s,
                    s,
                    u.as_slice(),
                    s,
                    s,
                    s,
                    0.0,
                    &mut h[..m * s],
                    s,
                );
                for i in 0..m {
                    for (t, j) in (p0..p1).chain(q0..q1).enumerate() {
                        w.set(i, j, h[i * s + t]);
                    }
                }
                for i in 0..n {
                    for (t, j) in (p0..p1).chain(q0..q1).enumerate() {
                        g[i * s + t] = v.get(i, j);
                    }
                }
                gemm_slices_reference(
                    Transpose::No,
                    Transpose::No,
                    1.0,
                    &g[..n * s],
                    n,
                    s,
                    s,
                    u.as_slice(),
                    s,
                    s,
                    s,
                    0.0,
                    &mut h[..n * s],
                    s,
                );
                for i in 0..n {
                    for (t, j) in (p0..p1).chain(q0..q1).enumerate() {
                        v.set(i, j, h[i * s + t]);
                    }
                }
            }
        }
        if converged {
            break;
        }
    }
    extract_svd(&w, &v, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
        Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn check_svd(a: &Matrix, tol: f64) {
        let Svd { u, s, v } = jacobi_svd(a);
        let k = a.rows().min(a.cols());
        assert_eq!(u.shape(), (a.rows(), k));
        assert_eq!(v.shape(), (a.cols(), k));
        assert_eq!(s.len(), k);
        // Descending order, nonnegative.
        for w in s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        for &sv in &s {
            assert!(sv >= 0.0);
        }
        // Reconstruction: A ≈ U diag(s) Vᵀ.
        let us = Matrix::from_fn(a.rows(), k, |i, j| u.get(i, j) * s[j]);
        let rec = gemm(Transpose::No, Transpose::Yes, 1.0, &us, &v);
        let err = a.sub(&rec).frob_norm() / (1.0 + a.frob_norm());
        assert!(err < tol, "SVD reconstruction error {err}");
    }

    #[test]
    fn square_random() {
        let mut rng = StdRng::seed_from_u64(41);
        for n in [1usize, 3, 10, 30] {
            check_svd(&random_matrix(&mut rng, n, n), 1e-9);
        }
    }

    #[test]
    fn tall_uses_qr_path() {
        let mut rng = StdRng::seed_from_u64(42);
        check_svd(&random_matrix(&mut rng, 80, 7), 1e-9);
    }

    #[test]
    fn wide_matrix() {
        let mut rng = StdRng::seed_from_u64(43);
        check_svd(&random_matrix(&mut rng, 5, 40), 1e-9);
    }

    #[test]
    fn blocked_sizes_reconstruct() {
        let mut rng = StdRng::seed_from_u64(46);
        // Column counts past SVD_BLOCKED_MIN, including a ragged last block.
        check_svd(&random_matrix(&mut rng, 200, 200), 1e-8);
        let svd = jacobi_svd(&random_matrix(&mut rng, 210, 193));
        assert!(svd.u.has_orthonormal_columns(1e-8));
        assert!(svd.v.has_orthonormal_columns(1e-8));
    }

    #[test]
    fn singular_values_match_eig_of_gram() {
        let mut rng = StdRng::seed_from_u64(44);
        let a = random_matrix(&mut rng, 25, 10);
        let svd = jacobi_svd(&a);
        let gram = crate::syrk::syrk(&a.transpose()); // AᵀA, 10x10
        let eig = crate::eig::sym_eig_desc(&gram);
        for (sv, ev) in svd.s.iter().zip(eig.values.iter()) {
            assert!((sv * sv - ev).abs() < 1e-8 * (1.0 + ev.abs()));
        }
    }

    #[test]
    fn rank_one_matrix() {
        let u = [1.0, 2.0, 3.0];
        let v = [4.0, 5.0];
        let a = Matrix::from_fn(3, 2, |i, j| u[i] * v[j]);
        let svd = jacobi_svd(&a);
        assert!(svd.s[0] > 1.0);
        assert!(
            svd.s[1].abs() < 1e-10,
            "second singular value should vanish"
        );
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(4, 3);
        let svd = jacobi_svd(&a);
        assert!(svd.s.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_matrix() {
        let a = Matrix::zeros(0, 3);
        let svd = jacobi_svd(&a);
        assert!(svd.s.is_empty());
    }

    #[test]
    fn orthonormal_factors() {
        let mut rng = StdRng::seed_from_u64(45);
        let a = random_matrix(&mut rng, 20, 12);
        let svd = jacobi_svd(&a);
        assert!(svd.u.has_orthonormal_columns(1e-8));
        assert!(svd.v.has_orthonormal_columns(1e-8));
    }

    fn assert_svd_bitwise_eq(x: &Svd, y: &Svd, what: &str) {
        assert_eq!(x.s.len(), y.s.len(), "{what}: value count");
        for (i, (a, b)) in x.s.iter().zip(y.s.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: s[{i}] {a} vs {b}");
        }
        for (mx, my, name) in [(&x.u, &y.u, "U"), (&x.v, &y.v, "V")] {
            assert_eq!(mx.shape(), my.shape(), "{what}: {name} shape");
            for (i, (a, b)) in mx.as_slice().iter().zip(my.as_slice().iter()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{what}: {name}[{i}] {a} vs {b}");
            }
        }
    }

    #[test]
    fn blocked_path_matches_the_reference_bitwise() {
        let mut rng = StdRng::seed_from_u64(47);
        // A ragged blocked sweep, and a tall input whose QR preprocessing
        // feeds a blocked square sweep.
        for (m, n) in [(210usize, 193usize), (400, 200)] {
            let a = random_matrix(&mut rng, m, n);
            let fast = jacobi_svd(&a);
            let refr = jacobi_svd_reference(&a);
            assert_svd_bitwise_eq(&fast, &refr, &format!("{m}x{n}"));
        }
    }

    #[test]
    fn small_square_path_is_the_scalar_recurrence_bitwise() {
        let mut rng = StdRng::seed_from_u64(48);
        // Square ≤ SVD_BLOCKED_MIN dispatches straight to the scalar sweeps
        // in both the production and pre-blocking entry points.
        for n in [60usize, 120] {
            let a = random_matrix(&mut rng, n, n);
            let fast = jacobi_svd(&a);
            let unb = jacobi_svd_unblocked(&a);
            assert_svd_bitwise_eq(&fast, &unb, &format!("{n}x{n}"));
            let refr = jacobi_svd_reference(&a);
            assert_svd_bitwise_eq(&refr, &unb, &format!("reference {n}x{n}"));
        }
    }

    #[test]
    fn rank_deficient_blocked_input_converges() {
        // Numerically low-rank input past the blocked cutoff: without the
        // absolute noise floor in pair_is_converged, the pure-noise column
        // blocks never pass the relative test and the sweeps stall at
        // SVD_MAX_SWEEPS (and drift bitwise from the reference's stall).
        let a = Matrix::from_fn(210, 200, |i, j| ((i * 11 + j * 3) as f64 * 0.27).sin());
        check_svd(&a, 1e-8);
        let fast = jacobi_svd(&a);
        let refr = jacobi_svd_reference(&a);
        assert_svd_bitwise_eq(&fast, &refr, "smooth 210x200");
    }

    #[test]
    fn blocked_bits_are_invariant_to_gemm_blocking() {
        let mut rng = StdRng::seed_from_u64(49);
        let a = random_matrix(&mut rng, 200, 193);
        let base = jacobi_svd(&a);
        let prev = crate::blocking::force_blocking(crate::blocking::Blocking {
            mc: 16,
            kc: 16,
            nc: 16,
        });
        let shrunk = jacobi_svd(&a);
        crate::blocking::force_blocking(prev);
        assert_svd_bitwise_eq(&base, &shrunk, "TUCKER_BLOCK shrink");
    }
}
