//! One-sided Jacobi singular value decomposition.
//!
//! The paper's kernels use the Gram-matrix + eigendecomposition route to obtain
//! left singular vectors, which is accurate whenever the target error ε is well
//! above √(machine precision) (Sec. II-B). For ε near machine precision the
//! paper proposes a direct SVD (Sec. IX). This module supplies that option:
//! a thin SVD computed by one-sided Jacobi rotations, optionally preceded by a
//! QR factorization when the matrix is very tall (the exact scheme sketched in
//! the paper's conclusion).

use crate::gemm::{gemm, Transpose};
use crate::matrix::Matrix;
use crate::qr::householder_qr;

/// Thin SVD `A = U · diag(s) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m × k`.
    pub u: Matrix,
    /// Singular values in descending order, length `k = min(m, n)`.
    pub s: Vec<f64>,
    /// Right singular vectors, `n × k`.
    pub v: Matrix,
}

/// Computes the thin SVD of `a` by one-sided Jacobi.
///
/// When `a` has at least twice as many rows as columns, a QR factorization is
/// performed first and the Jacobi sweeps run on the small `R` factor — this is
/// the "QR as preprocessing" strategy from the paper's Sec. IX.
pub fn jacobi_svd(a: &Matrix) -> Svd {
    let m = a.rows();
    let n = a.cols();
    if m == 0 || n == 0 {
        return Svd {
            u: Matrix::zeros(m, 0),
            s: vec![],
            v: Matrix::zeros(n, 0),
        };
    }
    if m >= 2 * n && n > 0 {
        // Tall-skinny: A = Q R, SVD(R) = Ur S Vᵀ, so U = Q Ur.
        let qr = householder_qr(a);
        let inner = jacobi_svd_dense(&qr.r);
        let u = gemm(Transpose::No, Transpose::No, 1.0, &qr.q, &inner.u);
        return Svd {
            u,
            s: inner.s,
            v: inner.v,
        };
    }
    if n > m {
        // Work on the transpose and swap U/V.
        let at = a.transpose();
        let svd_t = jacobi_svd(&at);
        return Svd {
            u: svd_t.v,
            s: svd_t.s,
            v: svd_t.u,
        };
    }
    jacobi_svd_dense(a)
}

/// One-sided Jacobi on a general (m ≥ n not required, but intended small) matrix.
fn jacobi_svd_dense(a: &Matrix) -> Svd {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    // Work matrix W whose columns are rotated toward mutual orthogonality.
    let mut w = a.clone();
    let mut v = Matrix::identity(n);
    let max_sweeps = 60;
    let tol = 1e-14;

    for _sweep in 0..max_sweeps {
        let mut converged = true;
        for p in 0..n {
            for q in p + 1..n {
                // Compute the 2x2 Gram submatrix of columns p and q.
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = 0.0;
                for i in 0..m {
                    let wp = w.get(i, p);
                    let wq = w.get(i, q);
                    app += wp * wp;
                    aqq += wq * wq;
                    apq += wp * wq;
                }
                if apq.abs() > tol * (app * aqq).sqrt().max(1e-300) {
                    converged = false;
                    // Jacobi rotation that annihilates apq.
                    let tau = (aqq - app) / (2.0 * apq);
                    let t = if tau >= 0.0 {
                        1.0 / (tau + (1.0 + tau * tau).sqrt())
                    } else {
                        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    for i in 0..m {
                        let wp = w.get(i, p);
                        let wq = w.get(i, q);
                        w.set(i, p, c * wp - s * wq);
                        w.set(i, q, s * wp + c * wq);
                    }
                    for i in 0..n {
                        let vp = v.get(i, p);
                        let vq = v.get(i, q);
                        v.set(i, p, c * vp - s * vq);
                        v.set(i, q, s * vp + c * vq);
                    }
                }
            }
        }
        if converged {
            break;
        }
    }

    // Singular values are the column norms of W; U columns are normalized W columns.
    let mut sv: Vec<(f64, usize)> = (0..n)
        .map(|j| {
            let col: Vec<f64> = (0..m).map(|i| w.get(i, j)).collect();
            (crate::blas1::nrm2(&col), j)
        })
        .collect();
    sv.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let kept: Vec<(f64, usize)> = sv.into_iter().take(k).collect();

    let s: Vec<f64> = kept.iter().map(|&(sv, _)| sv).collect();
    let mut u = Matrix::zeros(m, k);
    let mut v_out = Matrix::zeros(n, k);
    for (out_j, &(sval, j)) in kept.iter().enumerate() {
        if sval > 1e-300 {
            for i in 0..m {
                u.set(i, out_j, w.get(i, j) / sval);
            }
        } else {
            // Null singular value: leave a zero column (caller treats rank as reduced).
        }
        for i in 0..n {
            v_out.set(i, out_j, v.get(i, j));
        }
    }
    Svd { u, s, v: v_out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
        Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn check_svd(a: &Matrix, tol: f64) {
        let Svd { u, s, v } = jacobi_svd(a);
        let k = a.rows().min(a.cols());
        assert_eq!(u.shape(), (a.rows(), k));
        assert_eq!(v.shape(), (a.cols(), k));
        assert_eq!(s.len(), k);
        // Descending order, nonnegative.
        for w in s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        for &sv in &s {
            assert!(sv >= 0.0);
        }
        // Reconstruction: A ≈ U diag(s) Vᵀ.
        let us = Matrix::from_fn(a.rows(), k, |i, j| u.get(i, j) * s[j]);
        let rec = gemm(Transpose::No, Transpose::Yes, 1.0, &us, &v);
        let err = a.sub(&rec).frob_norm() / (1.0 + a.frob_norm());
        assert!(err < tol, "SVD reconstruction error {err}");
    }

    #[test]
    fn square_random() {
        let mut rng = StdRng::seed_from_u64(41);
        for n in [1usize, 3, 10, 30] {
            check_svd(&random_matrix(&mut rng, n, n), 1e-9);
        }
    }

    #[test]
    fn tall_uses_qr_path() {
        let mut rng = StdRng::seed_from_u64(42);
        check_svd(&random_matrix(&mut rng, 80, 7), 1e-9);
    }

    #[test]
    fn wide_matrix() {
        let mut rng = StdRng::seed_from_u64(43);
        check_svd(&random_matrix(&mut rng, 5, 40), 1e-9);
    }

    #[test]
    fn singular_values_match_eig_of_gram() {
        let mut rng = StdRng::seed_from_u64(44);
        let a = random_matrix(&mut rng, 25, 10);
        let svd = jacobi_svd(&a);
        let gram = crate::syrk::syrk(&a.transpose()); // AᵀA, 10x10
        let eig = crate::eig::sym_eig_desc(&gram);
        for (sv, ev) in svd.s.iter().zip(eig.values.iter()) {
            assert!((sv * sv - ev).abs() < 1e-8 * (1.0 + ev.abs()));
        }
    }

    #[test]
    fn rank_one_matrix() {
        let u = [1.0, 2.0, 3.0];
        let v = [4.0, 5.0];
        let a = Matrix::from_fn(3, 2, |i, j| u[i] * v[j]);
        let svd = jacobi_svd(&a);
        assert!(svd.s[0] > 1.0);
        assert!(
            svd.s[1].abs() < 1e-10,
            "second singular value should vanish"
        );
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(4, 3);
        let svd = jacobi_svd(&a);
        assert!(svd.s.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_matrix() {
        let a = Matrix::zeros(0, 3);
        let svd = jacobi_svd(&a);
        assert!(svd.s.is_empty());
    }

    #[test]
    fn orthonormal_factors() {
        let mut rng = StdRng::seed_from_u64(45);
        let a = random_matrix(&mut rng, 20, 12);
        let svd = jacobi_svd(&a);
        assert!(svd.u.has_orthonormal_columns(1e-8));
        assert!(svd.v.has_orthonormal_columns(1e-8));
    }
}
