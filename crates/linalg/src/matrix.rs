//! Dense, row-major, owned `f64` matrix.
//!
//! The Tucker kernels mostly operate directly on raw slices with explicit
//! leading dimensions (see [`crate::gemm`](mod@crate::gemm)), but factor matrices, Gram
//! matrices, and eigenvector matrices are carried around as [`Matrix`] values.
//! Row-major storage matches the paper's choice for local factor-matrix blocks
//! (Sec. IV-B: "the local matrices are stored in row-major order").

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense matrix of `f64` stored in row-major order.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(i, j)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix with entries drawn from the given closure over a flat index.
    pub fn from_iter(rows: usize, cols: usize, iter: impl IntoIterator<Item = f64>) -> Self {
        let data: Vec<f64> = iter.into_iter().take(rows * cols).collect();
        Self::from_vec(rows, cols, data)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has zero entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the row-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the row-major backing slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the backing vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Extracts rows `[r0, r1)` as a new matrix.
    pub fn row_block(&self, r0: usize, r1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows, "row_block out of range");
        Matrix::from_vec(
            r1 - r0,
            self.cols,
            self.data[r0 * self.cols..r1 * self.cols].to_vec(),
        )
    }

    /// Extracts columns `[c0, c1)` as a new matrix.
    pub fn col_block(&self, c0: usize, c1: usize) -> Matrix {
        assert!(c0 <= c1 && c1 <= self.cols, "col_block out of range");
        let mut out = Matrix::zeros(self.rows, c1 - c0);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[c0..c1]);
        }
        out
    }

    /// Extracts the rows whose indices appear in `idx` (in order) as a new matrix.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (k, &i) in idx.iter().enumerate() {
            assert!(i < self.rows, "select_rows index out of range");
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f64 {
        crate::blas1::nrm2(&self.data)
    }

    /// Maximum absolute entry (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Entrywise sum of this matrix and another.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Entrywise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Scales every entry by `a`.
    pub fn scale(&mut self, a: f64) {
        crate::blas1::scal(a, &mut self.data);
    }

    /// Matrix-vector product `self · x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        (0..self.rows)
            .map(|i| crate::blas1::dot(self.row(i), x))
            .collect()
    }

    /// Matrix product `self · other` (convenience wrapper over [`crate::gemm()`]).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        crate::gemm::gemm(
            crate::gemm::Transpose::No,
            crate::gemm::Transpose::No,
            1.0,
            self,
            other,
        )
    }

    /// Returns `true` if the columns of this matrix are orthonormal to within `tol`.
    pub fn has_orthonormal_columns(&self, tol: f64) -> bool {
        for j in 0..self.cols {
            for k in j..self.cols {
                let mut s = 0.0;
                for i in 0..self.rows {
                    s += self.get(i, j) * self.get(i, k);
                }
                let expected = if j == k { 1.0 } else { 0.0 };
                if (s - expected).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_show = 8;
        for i in 0..self.rows.min(max_show) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(max_show) {
                write!(f, "{:>10.4} ", self.get(i, j))?;
            }
            if self.cols > max_show {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > max_show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
    }

    #[test]
    fn from_fn_layout() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_wrong_len_panics() {
        Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (4, 3));
        assert_eq!(t.get(2, 1), m.get(1, 2));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn row_and_col_blocks() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let rb = m.row_block(1, 3);
        assert_eq!(rb.shape(), (2, 4));
        assert_eq!(rb.get(0, 0), 4.0);
        let cb = m.col_block(2, 4);
        assert_eq!(cb.shape(), (4, 2));
        assert_eq!(cb.get(0, 0), 2.0);
        assert_eq!(cb.get(3, 1), 15.0);
    }

    #[test]
    fn select_rows_picks_in_order() {
        let m = Matrix::from_fn(4, 2, |i, j| (i * 2 + j) as f64);
        let s = m.select_rows(&[3, 0]);
        assert_eq!(s.row(0), &[6.0, 7.0]);
        assert_eq!(s.row(1), &[0.0, 1.0]);
    }

    #[test]
    fn matvec_and_matmul() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
        let b = Matrix::identity(2);
        assert_eq!(a.matmul(&b), a);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![3.0, 2.0, 1.0]);
        assert_eq!(a.add(&b).as_slice(), &[4.0, 4.0, 4.0]);
        assert_eq!(a.sub(&b).as_slice(), &[-2.0, 0.0, 2.0]);
        let mut c = a.clone();
        c.scale(2.0);
        assert_eq!(c.as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn frob_norm_and_max_abs() {
        let a = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, -4.0]);
        assert!((a.frob_norm() - 5.0).abs() < 1e-14);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn orthonormal_column_check() {
        let i = Matrix::identity(4);
        assert!(i.has_orthonormal_columns(1e-14));
        let m = Matrix::from_vec(2, 2, vec![1.0, 1.0, 0.0, 1.0]);
        assert!(!m.has_orthonormal_columns(1e-14));
    }

    #[test]
    fn debug_format_does_not_panic() {
        let m = Matrix::from_fn(10, 10, |i, j| (i + j) as f64);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 10x10"));
    }
}
