//! General matrix-matrix multiplication (the `dgemm` replacement).
//!
//! The local TTM and Gram kernels of the Tucker algorithm are cast as GEMM
//! calls over sub-blocks of unfolded tensors (paper Sec. IV-C / V-B). Those
//! call sites work on raw slices with explicit leading dimensions, so the
//! primary entry point here is [`gemm_slices`]; [`gemm`] / [`gemm_into`] are
//! `Matrix`-typed conveniences and [`par_gemm`] parallelizes over row panels
//! using scoped threads.

use crate::matrix::Matrix;

/// Transpose option for a GEMM operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transpose {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl Transpose {
    /// Effective shape of an operand stored as `rows × cols`.
    pub fn effective(self, rows: usize, cols: usize) -> (usize, usize) {
        match self {
            Transpose::No => (rows, cols),
            Transpose::Yes => (cols, rows),
        }
    }
}

/// Cache-block edge sizes for the packed micro-kernel.
const MC: usize = 64;
const KC: usize = 128;
const NC: usize = 256;

/// Computes `C ← alpha · op(A) · op(B) + beta · C` on raw row-major slices.
///
/// * `a` is `a_rows × a_cols` with leading dimension `lda` (row-major: the
///   stride between consecutive rows).
/// * `b` is `b_rows × b_cols` with leading dimension `ldb`.
/// * `c` is `m × n` with leading dimension `ldc`, where `m × k = op(A)` and
///   `k × n = op(B)`.
///
/// # Panics
/// Panics if the inner dimensions of `op(A)` and `op(B)` disagree or if any
/// slice is too short for its described shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_slices(
    ta: Transpose,
    tb: Transpose,
    alpha: f64,
    a: &[f64],
    a_rows: usize,
    a_cols: usize,
    lda: usize,
    b: &[f64],
    b_rows: usize,
    b_cols: usize,
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    let (m, ka) = ta.effective(a_rows, a_cols);
    let (kb, n) = tb.effective(b_rows, b_cols);
    assert_eq!(ka, kb, "gemm: inner dimension mismatch ({ka} vs {kb})");
    let k = ka;
    if a_rows > 0 {
        assert!(
            a.len() >= (a_rows - 1) * lda + a_cols,
            "gemm: A slice too short"
        );
    }
    if b_rows > 0 {
        assert!(
            b.len() >= (b_rows - 1) * ldb + b_cols,
            "gemm: B slice too short"
        );
    }
    if m > 0 {
        assert!(c.len() >= (m - 1) * ldc + n, "gemm: C slice too short");
    }

    // Scale C by beta first.
    if beta != 1.0 {
        for i in 0..m {
            let row = &mut c[i * ldc..i * ldc + n];
            if beta == 0.0 {
                row.fill(0.0);
            } else {
                for v in row.iter_mut() {
                    *v *= beta;
                }
            }
        }
    }
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }

    // Packed blocked loop: pack a KC×NC panel of op(B) and an MC×KC panel of
    // op(A), then run a straightforward register-friendly inner kernel. The
    // pack buffers are sized to the actual problem so tiny GEMMs (ubiquitous in
    // the interior-mode TTM/Gram block loops) do not pay for full-size panels.
    let mut a_pack = vec![0.0f64; MC.min(m) * KC.min(k)];
    let mut b_pack = vec![0.0f64; KC.min(k) * NC.min(n)];

    let read_a = |i: usize, p: usize| -> f64 {
        match ta {
            Transpose::No => a[i * lda + p],
            Transpose::Yes => a[p * lda + i],
        }
    };
    let read_b = |p: usize, j: usize| -> f64 {
        match tb {
            Transpose::No => b[p * ldb + j],
            Transpose::Yes => b[j * ldb + p],
        }
    };

    let mut jc = 0;
    while jc < n {
        let nb = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kb_ = KC.min(k - pc);
            // Pack op(B)[pc..pc+kb_, jc..jc+nb] row-major into b_pack (kb_ x nb).
            for p in 0..kb_ {
                for j in 0..nb {
                    b_pack[p * nb + j] = read_b(pc + p, jc + j);
                }
            }
            let mut ic = 0;
            while ic < m {
                let mb = MC.min(m - ic);
                // Pack op(A)[ic..ic+mb, pc..pc+kb_] row-major into a_pack (mb x kb_).
                for i in 0..mb {
                    for p in 0..kb_ {
                        a_pack[i * kb_ + p] = read_a(ic + i, pc + p);
                    }
                }
                // C[ic..ic+mb, jc..jc+nb] += alpha * a_pack * b_pack
                for i in 0..mb {
                    let arow = &a_pack[i * kb_..(i + 1) * kb_];
                    let crow = &mut c[(ic + i) * ldc + jc..(ic + i) * ldc + jc + nb];
                    for (p, &aval) in arow.iter().enumerate() {
                        let scaled = alpha * aval;
                        if scaled != 0.0 {
                            let brow = &b_pack[p * nb..p * nb + nb];
                            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                                *cv += scaled * bv;
                            }
                        }
                    }
                }
                ic += mb;
            }
            pc += kb_;
        }
        jc += nb;
    }
}

/// Computes `alpha · op(A) · op(B)` and returns it as a new [`Matrix`].
pub fn gemm(ta: Transpose, tb: Transpose, alpha: f64, a: &Matrix, b: &Matrix) -> Matrix {
    let (m, _) = ta.effective(a.rows(), a.cols());
    let (_, n) = tb.effective(b.rows(), b.cols());
    let mut c = Matrix::zeros(m, n);
    gemm_into(ta, tb, alpha, a, b, 0.0, &mut c);
    c
}

/// Computes `C ← alpha · op(A) · op(B) + beta · C` for [`Matrix`] operands.
pub fn gemm_into(
    ta: Transpose,
    tb: Transpose,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, ka) = ta.effective(a.rows(), a.cols());
    let (kb, n) = tb.effective(b.rows(), b.cols());
    assert_eq!(ka, kb, "gemm_into: inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "gemm_into: output shape mismatch");
    let lda = a.cols();
    let ldb = b.cols();
    let ldc = c.cols();
    gemm_slices(
        ta,
        tb,
        alpha,
        a.as_slice(),
        a.rows(),
        a.cols(),
        lda,
        b.as_slice(),
        b.rows(),
        b.cols(),
        ldb,
        beta,
        c.as_mut_slice(),
        ldc,
    );
}

/// Thread-parallel GEMM: `alpha · op(A) · op(B)`, splitting the rows of the
/// result across `threads` scoped worker threads.
///
/// Falls back to the sequential kernel when the problem is small or
/// `threads <= 1`. This mirrors the paper's reliance on threaded BLAS within a
/// node (Sec. IX mentions multi-threaded BLAS as an optimization avenue).
pub fn par_gemm(
    ta: Transpose,
    tb: Transpose,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    threads: usize,
) -> Matrix {
    let (m, ka) = ta.effective(a.rows(), a.cols());
    let (kb, n) = tb.effective(b.rows(), b.cols());
    assert_eq!(ka, kb, "par_gemm: inner dimension mismatch");
    let k = ka;
    let work = m.saturating_mul(n).saturating_mul(k);
    if threads <= 1 || m < 2 * threads || work < 1 << 16 {
        return gemm(ta, tb, alpha, a, b);
    }

    let mut c = Matrix::zeros(m, n);
    let rows_per = m.div_ceil(threads);
    let lda = a.cols();
    let ldb = b.cols();
    let a_slice = a.as_slice();
    let b_slice = b.as_slice();

    // Split C into disjoint row panels; each thread computes one panel.
    let mut panels: Vec<&mut [f64]> = Vec::new();
    {
        let mut rest = c.as_mut_slice();
        let mut row = 0usize;
        while row < m {
            let take = rows_per.min(m - row);
            let (head, tail) = rest.split_at_mut(take * n);
            panels.push(head);
            rest = tail;
            row += take;
        }
    }

    std::thread::scope(|scope| {
        for (t, panel) in panels.into_iter().enumerate() {
            let row0 = t * rows_per;
            let nrows = panel.len() / n;
            scope.spawn(move || {
                // Each worker multiplies its row panel of op(A) by the full op(B).
                match ta {
                    Transpose::No => {
                        gemm_slices(
                            Transpose::No,
                            tb,
                            alpha,
                            &a_slice[row0 * lda..],
                            nrows,
                            a.cols(),
                            lda,
                            b_slice,
                            b.rows(),
                            b.cols(),
                            ldb,
                            0.0,
                            panel,
                            n,
                        );
                    }
                    Transpose::Yes => {
                        // op(A) rows correspond to columns of the stored A; there is
                        // no contiguous row panel, so pack the panel explicitly.
                        let mut packed = vec![0.0f64; nrows * k];
                        for i in 0..nrows {
                            for p in 0..k {
                                packed[i * k + p] = a_slice[p * lda + (row0 + i)];
                            }
                        }
                        gemm_slices(
                            Transpose::No,
                            tb,
                            alpha,
                            &packed,
                            nrows,
                            k,
                            k,
                            b_slice,
                            b.rows(),
                            b.cols(),
                            ldb,
                            0.0,
                            panel,
                            n,
                        );
                    }
                }
            });
        }
    });

    c
}

/// Reference (naive triple-loop) GEMM used by tests to validate the blocked kernel.
pub fn gemm_reference(ta: Transpose, tb: Transpose, alpha: f64, a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = ta.effective(a.rows(), a.cols());
    let (_, n) = tb.effective(b.rows(), b.cols());
    let read_a = |i: usize, p: usize| match ta {
        Transpose::No => a.get(i, p),
        Transpose::Yes => a.get(p, i),
    };
    let read_b = |p: usize, j: usize| match tb {
        Transpose::No => b.get(p, j),
        Transpose::Yes => b.get(j, p),
    };
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for p in 0..k {
                s += read_a(i, p) * read_b(p, j);
            }
            c.set(i, j, alpha * s);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
        Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < tol, "mismatch: {x} vs {y}");
        }
    }

    #[test]
    fn small_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = gemm(Transpose::No, Transpose::No, 1.0, &a, &b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_matrix(&mut rng, 17, 17);
        let i = Matrix::identity(17);
        assert_close(&gemm(Transpose::No, Transpose::No, 1.0, &a, &i), &a, 1e-12);
        assert_close(&gemm(Transpose::No, Transpose::No, 1.0, &i, &a), &a, 1e-12);
    }

    #[test]
    fn matches_reference_all_transpose_combos() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(m, k, n) in &[(5usize, 7usize, 3usize), (33, 65, 17), (70, 129, 40)] {
            for &ta in &[Transpose::No, Transpose::Yes] {
                for &tb in &[Transpose::No, Transpose::Yes] {
                    let (ar, ac) = match ta {
                        Transpose::No => (m, k),
                        Transpose::Yes => (k, m),
                    };
                    let (br, bc) = match tb {
                        Transpose::No => (k, n),
                        Transpose::Yes => (n, k),
                    };
                    let a = random_matrix(&mut rng, ar, ac);
                    let b = random_matrix(&mut rng, br, bc);
                    let fast = gemm(ta, tb, 1.3, &a, &b);
                    let slow = gemm_reference(ta, tb, 1.3, &a, &b);
                    assert_close(&fast, &slow, 1e-10);
                }
            }
        }
    }

    #[test]
    fn beta_accumulation() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_matrix(&mut rng, 10, 12);
        let b = random_matrix(&mut rng, 12, 8);
        let mut c = random_matrix(&mut rng, 10, 8);
        let c0 = c.clone();
        gemm_into(Transpose::No, Transpose::No, 2.0, &a, &b, 0.5, &mut c);
        let expected = gemm_reference(Transpose::No, Transpose::No, 2.0, &a, &b);
        for i in 0..10 {
            for j in 0..8 {
                let want = expected.get(i, j) + 0.5 * c0.get(i, j);
                assert!((c.get(i, j) - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn zero_alpha_only_scales_c() {
        let a = Matrix::from_fn(4, 4, |i, j| (i + j) as f64);
        let b = Matrix::identity(4);
        let mut c = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let c0 = c.clone();
        gemm_into(Transpose::No, Transpose::No, 0.0, &a, &b, 2.0, &mut c);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(c.get(i, j), 2.0 * c0.get(i, j));
            }
        }
    }

    #[test]
    fn empty_dimensions_are_ok() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        let c = gemm(Transpose::No, Transpose::No, 1.0, &a, &b);
        assert_eq!(c.shape(), (0, 3));
        let a = Matrix::zeros(4, 0);
        let b = Matrix::zeros(0, 3);
        let c = gemm(Transpose::No, Transpose::No, 1.0, &a, &b);
        assert_eq!(c.shape(), (4, 3));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic]
    fn inner_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        gemm(Transpose::No, Transpose::No, 1.0, &a, &b);
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = random_matrix(&mut rng, 120, 90);
        let b = random_matrix(&mut rng, 90, 75);
        let seq = gemm(Transpose::No, Transpose::No, 1.0, &a, &b);
        for threads in [1, 2, 4, 7] {
            let par = par_gemm(Transpose::No, Transpose::No, 1.0, &a, &b, threads);
            assert_close(&par, &seq, 1e-10);
        }
    }

    #[test]
    fn parallel_transposed_a_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = random_matrix(&mut rng, 90, 110);
        let b = random_matrix(&mut rng, 90, 60);
        let seq = gemm(Transpose::Yes, Transpose::No, 1.0, &a, &b);
        let par = par_gemm(Transpose::Yes, Transpose::No, 1.0, &a, &b, 4);
        assert_close(&par, &seq, 1e-10);
    }

    #[test]
    fn gemm_slices_with_leading_dimension() {
        // Multiply a 2x2 submatrix embedded in a 2x4 buffer.
        let a = vec![1.0, 2.0, 99.0, 99.0, 3.0, 4.0, 99.0, 99.0];
        let b = vec![1.0, 0.0, 0.0, 1.0];
        let mut c = vec![0.0; 4];
        gemm_slices(
            Transpose::No,
            Transpose::No,
            1.0,
            &a,
            2,
            2,
            4,
            &b,
            2,
            2,
            2,
            0.0,
            &mut c,
            2,
        );
        assert_eq!(c, vec![1.0, 2.0, 3.0, 4.0]);
    }
}
