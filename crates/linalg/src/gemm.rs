//! General matrix-matrix multiplication (the `dgemm` replacement).
//!
//! The local TTM and Gram kernels of the Tucker algorithm are cast as GEMM
//! calls over sub-blocks of unfolded tensors (paper Sec. IV-C / V-B). Those
//! call sites work on raw slices with explicit leading dimensions, so the
//! primary entry point here is [`gemm_slices`]; [`gemm`] / [`gemm_into`] are
//! `Matrix`-typed conveniences. [`gemm_slices_ctx`] / [`gemm_ctx`] run the
//! same kernel over row panels scattered onto the shared `tucker-exec` pool
//! (one panel per thread, no per-call spawning), and [`par_gemm`] survives as
//! a thin compatibility wrapper over that pool-backed path.
//!
//! **Determinism contract (renegotiated in the microkernel PR):** every
//! element of C is one running accumulator, seeded from the beta-scaled C
//! value, adding `fl(fl(alpha·a[i,p]) · b[p,j])` for `p` strictly ascending —
//! with no fused multiply-add on any SIMD tier. Cache blocking, the packed
//! vs. direct path, the `TUCKER_SIMD` tier, and row-panel parallelism all
//! preserve that per-element recurrence exactly, so `gemm_slices_ctx` is
//! bit-identical to `gemm_slices` for every thread count *and* every tier
//! ([`crate::microkernel`] documents the kernel side of the contract;
//! [`gemm_slices_reference`] restates it as an executable oracle).

use crate::matrix::Matrix;
use tucker_exec::ExecContext;
use tucker_obs::metrics::Counter;

/// Kernel accounting: invocations of the sequential kernel (pool panels
/// count individually) and total multiply-add flops (2·m·n·k per product),
/// comparable against the `CostModel` flop predictions.
static GEMM_CALLS: Counter = Counter::new("linalg.gemm.calls");
static GEMM_FLOPS: Counter = Counter::new("linalg.gemm.flops");

/// Transpose option for a GEMM operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transpose {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl Transpose {
    /// Effective shape of an operand stored as `rows × cols`.
    pub fn effective(self, rows: usize, cols: usize) -> (usize, usize) {
        match self {
            Transpose::No => (rows, cols),
            Transpose::Yes => (cols, rows),
        }
    }
}

/// Multiply-add count at or below which [`gemm_slices`] skips panel packing
/// and runs the direct scalar loop (same bits, less setup) — the shared
/// workspace-wide threshold, re-exported under the historical local name.
pub(crate) use crate::blocking::SMALL_PROBLEM_MADDS as DIRECT_WORK_MAX;

/// Computes `C ← alpha · op(A) · op(B) + beta · C` on raw row-major slices.
///
/// * `a` is `a_rows × a_cols` with leading dimension `lda` (row-major: the
///   stride between consecutive rows).
/// * `b` is `b_rows × b_cols` with leading dimension `ldb`.
/// * `c` is `m × n` with leading dimension `ldc`, where `m × k = op(A)` and
///   `k × n = op(B)`.
///
/// # Panics
/// Panics if the inner dimensions of `op(A)` and `op(B)` disagree or if any
/// slice is too short for its described shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_slices(
    ta: Transpose,
    tb: Transpose,
    alpha: f64,
    a: &[f64],
    a_rows: usize,
    a_cols: usize,
    lda: usize,
    b: &[f64],
    b_rows: usize,
    b_cols: usize,
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    let (m, ka) = ta.effective(a_rows, a_cols);
    let (kb, n) = tb.effective(b_rows, b_cols);
    assert_eq!(ka, kb, "gemm: inner dimension mismatch ({ka} vs {kb})");
    let k = ka;
    if a_rows > 0 {
        assert!(
            a.len() >= (a_rows - 1) * lda + a_cols,
            "gemm: A slice too short"
        );
    }
    if b_rows > 0 {
        assert!(
            b.len() >= (b_rows - 1) * ldb + b_cols,
            "gemm: B slice too short"
        );
    }
    if m > 0 {
        assert!(c.len() >= (m - 1) * ldc + n, "gemm: C slice too short");
    }

    // Scale C by beta first.
    if beta != 1.0 {
        for i in 0..m {
            let row = &mut c[i * ldc..i * ldc + n];
            if beta == 0.0 {
                row.fill(0.0);
            } else {
                for v in row.iter_mut() {
                    *v *= beta;
                }
            }
        }
    }
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    GEMM_CALLS.inc();
    GEMM_FLOPS.add(2 * (m as u64) * (n as u64) * (k as u64));

    // Both paths below realize the identical per-element recurrence (module
    // docs), so the cutover threshold is invisible in the result bits.
    if m * n * k <= DIRECT_WORK_MAX {
        gemm_direct(ta, tb, alpha, a, lda, b, ldb, c, ldc, m, n, k);
    } else {
        gemm_blocked(ta, tb, alpha, a, lda, b, ldb, c, ldc, m, n, k);
    }
}

/// Direct (unpacked) scalar path for tiny products: per-element running sum
/// over ascending `p`, `alpha` folded into the A term — the contract
/// recurrence with no packing overhead.
#[allow(clippy::too_many_arguments)]
fn gemm_direct(
    ta: Transpose,
    tb: Transpose,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
    m: usize,
    n: usize,
    k: usize,
) {
    for i in 0..m {
        let crow = &mut c[i * ldc..i * ldc + n];
        for p in 0..k {
            let av = alpha
                * match ta {
                    Transpose::No => a[i * lda + p],
                    Transpose::Yes => a[p * lda + i],
                };
            match tb {
                Transpose::No => {
                    let brow = &b[p * ldb..p * ldb + n];
                    for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                        *cv += av * bv;
                    }
                }
                Transpose::Yes => {
                    for (j, cv) in crow.iter_mut().enumerate() {
                        *cv += av * b[j * ldb + p];
                    }
                }
            }
        }
    }
}

/// Packed, cache-blocked microkernel driver: `jc` (nc columns) → `pc` (kc
/// contraction slab) → `ic` (mc rows), with op(A)/op(B) blocks packed into
/// 64-byte-aligned thread-local buffers and the tile grid retired by the
/// runtime-selected SIMD tier ([`crate::simd`]). The block edges come from
/// the runtime-derived [`crate::blocking::current_blocking`].
///
/// For any fixed output element, the `pc` slabs arrive in ascending order
/// and each slab's microkernel accumulates its terms in ascending order from
/// the element's current value — so the element sees one running sum over
/// `p = 0..k` regardless of the blocking constants or tier.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked(
    ta: Transpose,
    tb: Transpose,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
    m: usize,
    n: usize,
    k: usize,
) {
    let tier = crate::simd::current_tier();
    let blk = crate::blocking::current_blocking();
    let a_len = crate::pack::padded(blk.mc.min(m), crate::microkernel::MR) * blk.kc.min(k);
    let b_len = blk.kc.min(k) * crate::pack::padded(blk.nc.min(n), crate::microkernel::NR);
    crate::pack::with_pack_buffers(a_len, b_len, |a_pack, b_pack| {
        let mut jc = 0;
        while jc < n {
            let nb = blk.nc.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kb = blk.kc.min(k - pc);
                crate::pack::pack_b(b_pack, tb, b, ldb, pc, kb, jc, nb);
                let mut ic = 0;
                while ic < m {
                    let mb = blk.mc.min(m - ic);
                    crate::pack::pack_a(a_pack, ta, alpha, a, lda, ic, mb, pc, kb);
                    crate::microkernel::block_kernel(
                        tier,
                        a_pack,
                        b_pack,
                        mb,
                        nb,
                        kb,
                        &mut c[ic * ldc + jc..],
                        ldc,
                        None,
                    );
                    ic += mb;
                }
                pc += kb;
            }
            jc += nb;
        }
    });
}

/// Executable statement of the determinism contract, on the same raw-slice
/// surface as [`gemm_slices`]: the kernel and this function must agree **bit
/// for bit** on every input (the proptest battery in
/// `crates/linalg/tests/microkernel.rs` enforces exactly that).
#[allow(clippy::too_many_arguments)]
pub fn gemm_slices_reference(
    ta: Transpose,
    tb: Transpose,
    alpha: f64,
    a: &[f64],
    a_rows: usize,
    a_cols: usize,
    lda: usize,
    b: &[f64],
    b_rows: usize,
    b_cols: usize,
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    let (m, k) = ta.effective(a_rows, a_cols);
    let (_, n) = tb.effective(b_rows, b_cols);
    for i in 0..m {
        for j in 0..n {
            // Seed: beta-scaled C (0.0 exactly when beta == 0).
            let mut acc = if beta == 0.0 {
                0.0
            } else if beta == 1.0 {
                c[i * ldc + j]
            } else {
                beta * c[i * ldc + j]
            };
            if alpha != 0.0 {
                for p in 0..k {
                    let av = match ta {
                        Transpose::No => a[i * lda + p],
                        Transpose::Yes => a[p * lda + i],
                    };
                    let bv = match tb {
                        Transpose::No => b[p * ldb + j],
                        Transpose::Yes => b[j * ldb + p],
                    };
                    // fl(fl(alpha·a)·b), then one add — never an FMA.
                    acc += (alpha * av) * bv;
                }
            }
            c[i * ldc + j] = acc;
        }
    }
}

/// Computes `alpha · op(A) · op(B)` and returns it as a new [`Matrix`].
pub fn gemm(ta: Transpose, tb: Transpose, alpha: f64, a: &Matrix, b: &Matrix) -> Matrix {
    let (m, _) = ta.effective(a.rows(), a.cols());
    let (_, n) = tb.effective(b.rows(), b.cols());
    let mut c = Matrix::zeros(m, n);
    gemm_into(ta, tb, alpha, a, b, 0.0, &mut c);
    c
}

/// Computes `C ← alpha · op(A) · op(B) + beta · C` for [`Matrix`] operands.
pub fn gemm_into(
    ta: Transpose,
    tb: Transpose,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, ka) = ta.effective(a.rows(), a.cols());
    let (kb, n) = tb.effective(b.rows(), b.cols());
    assert_eq!(ka, kb, "gemm_into: inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "gemm_into: output shape mismatch");
    let lda = a.cols();
    let ldb = b.cols();
    let ldc = c.cols();
    gemm_slices(
        ta,
        tb,
        alpha,
        a.as_slice(),
        a.rows(),
        a.cols(),
        lda,
        b.as_slice(),
        b.rows(),
        b.cols(),
        ldb,
        beta,
        c.as_mut_slice(),
        ldc,
    );
}

/// Work (in multiply-adds) below which parallel GEMM entry points stay
/// sequential (shared workspace-wide threshold, re-exported for callers).
pub use tucker_exec::PAR_MIN_WORK;

/// [`par_gemm`]'s legacy row threshold: with fewer than `2 · threads` result
/// rows it falls back to the sequential kernel.
pub const PAR_MIN_ROWS_PER_THREAD: usize = 2;

/// Pool-backed [`gemm_slices`]: `C ← alpha · op(A) · op(B) + beta · C`,
/// splitting the rows of `C` into one panel per available thread of `ctx`.
///
/// Each panel is computed by the ordinary sequential kernel over the full
/// contraction dimension, so the result is **bit-identical** to
/// [`gemm_slices`] regardless of the thread count. Small problems
/// (`m·n·k < `[`PAR_MIN_WORK`]) run inline without touching the pool.
#[allow(clippy::too_many_arguments)]
pub fn gemm_slices_ctx(
    ctx: &ExecContext,
    ta: Transpose,
    tb: Transpose,
    alpha: f64,
    a: &[f64],
    a_rows: usize,
    a_cols: usize,
    lda: usize,
    b: &[f64],
    b_rows: usize,
    b_cols: usize,
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    let (m, ka) = ta.effective(a_rows, a_cols);
    let (kb, n) = tb.effective(b_rows, b_cols);
    assert_eq!(ka, kb, "gemm: inner dimension mismatch ({ka} vs {kb})");
    let k = ka;
    let work = m.saturating_mul(n).saturating_mul(k);
    // Only trace pool-worthy products; the fused TTM interior calls the
    // sequential kernel directly, so tiny GEMMs never flood the trace.
    let _span = if work >= PAR_MIN_WORK {
        let blk = crate::blocking::current_blocking();
        Some(tucker_obs::span!(
            "gemm",
            m = m,
            n = n,
            k = k,
            tier = crate::simd::current_tier().id(),
            mc = blk.mc,
            kc = blk.kc,
            nc = blk.nc
        ))
    } else {
        None
    };
    let parts = ctx.partition_for_work(m, work);
    if parts <= 1 {
        gemm_slices(
            ta, tb, alpha, a, a_rows, a_cols, lda, b, b_rows, b_cols, ldb, beta, c, ldc,
        );
        return;
    }

    if m > 0 {
        assert!(c.len() >= (m - 1) * ldc + n, "gemm: C slice too short");
    }
    // Split C into disjoint row panels; each pool thread computes one panel
    // against the full op(B). For op(A) = Aᵀ the panel's rows are a column
    // range of the stored A, reachable by offsetting the slice start.
    let ranges = tucker_exec::chunk_ranges(m, parts);
    ctx.for_each_row_panel(c, ldc, ranges, |rows, panel| {
        let (row0, nrows) = (rows.start, rows.len());
        match ta {
            Transpose::No => gemm_slices(
                Transpose::No,
                tb,
                alpha,
                &a[row0 * lda..],
                nrows,
                a_cols,
                lda,
                b,
                b_rows,
                b_cols,
                ldb,
                beta,
                panel,
                ldc,
            ),
            Transpose::Yes => gemm_slices(
                Transpose::Yes,
                tb,
                alpha,
                &a[row0..],
                a_rows,
                nrows,
                lda,
                b,
                b_rows,
                b_cols,
                ldb,
                beta,
                panel,
                ldc,
            ),
        }
    });
}

/// Pool-backed [`gemm`]: computes `alpha · op(A) · op(B)` on the threads of
/// `ctx` and returns a new [`Matrix`]. Bit-identical to [`gemm`].
pub fn gemm_ctx(
    ctx: &ExecContext,
    ta: Transpose,
    tb: Transpose,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
) -> Matrix {
    let (m, _) = ta.effective(a.rows(), a.cols());
    let (_, n) = tb.effective(b.rows(), b.cols());
    let mut c = Matrix::zeros(m, n);
    gemm_into_ctx(ctx, ta, tb, alpha, a, b, 0.0, &mut c);
    c
}

/// Pool-backed [`gemm_into`]: `C ← alpha · op(A) · op(B) + beta · C`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_into_ctx(
    ctx: &ExecContext,
    ta: Transpose,
    tb: Transpose,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, ka) = ta.effective(a.rows(), a.cols());
    let (kb, n) = tb.effective(b.rows(), b.cols());
    assert_eq!(ka, kb, "gemm_into: inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "gemm_into: output shape mismatch");
    let lda = a.cols();
    let ldb = b.cols();
    let ldc = c.cols();
    gemm_slices_ctx(
        ctx,
        ta,
        tb,
        alpha,
        a.as_slice(),
        a.rows(),
        a.cols(),
        lda,
        b.as_slice(),
        b.rows(),
        b.cols(),
        ldb,
        beta,
        c.as_mut_slice(),
        ldc,
    );
}

/// Thread-parallel GEMM: `alpha · op(A) · op(B)`, splitting the rows of the
/// result across up to `threads` workers of the **shared process pool** (no
/// threads are spawned per call).
///
/// Kept as a thin wrapper over [`gemm_slices_ctx`] for source compatibility.
/// The historical small-size fallbacks are preserved exactly: the sequential
/// kernel is used when `threads <= 1`, when `m < `[`PAR_MIN_ROWS_PER_THREAD`]` · threads`,
/// or when `m·n·k < `[`PAR_MIN_WORK`] — and since the pool-backed path is
/// bit-identical to the sequential kernel, crossing those boundaries can
/// never change results.
pub fn par_gemm(
    ta: Transpose,
    tb: Transpose,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    threads: usize,
) -> Matrix {
    let (m, ka) = ta.effective(a.rows(), a.cols());
    let (kb, n) = tb.effective(b.rows(), b.cols());
    assert_eq!(ka, kb, "par_gemm: inner dimension mismatch");
    let k = ka;
    let work = m.saturating_mul(n).saturating_mul(k);
    if threads <= 1 || m < PAR_MIN_ROWS_PER_THREAD * threads || work < PAR_MIN_WORK {
        return gemm(ta, tb, alpha, a, b);
    }
    let ctx = ExecContext::global().with_budget(threads);
    gemm_ctx(&ctx, ta, tb, alpha, a, b)
}

/// Reference (naive triple-loop) GEMM used by tests to validate the blocked kernel.
pub fn gemm_reference(ta: Transpose, tb: Transpose, alpha: f64, a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = ta.effective(a.rows(), a.cols());
    let (_, n) = tb.effective(b.rows(), b.cols());
    let read_a = |i: usize, p: usize| match ta {
        Transpose::No => a.get(i, p),
        Transpose::Yes => a.get(p, i),
    };
    let read_b = |p: usize, j: usize| match tb {
        Transpose::No => b.get(p, j),
        Transpose::Yes => b.get(j, p),
    };
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for p in 0..k {
                s += read_a(i, p) * read_b(p, j);
            }
            c.set(i, j, alpha * s);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
        Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < tol, "mismatch: {x} vs {y}");
        }
    }

    #[test]
    fn small_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = gemm(Transpose::No, Transpose::No, 1.0, &a, &b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_matrix(&mut rng, 17, 17);
        let i = Matrix::identity(17);
        assert_close(&gemm(Transpose::No, Transpose::No, 1.0, &a, &i), &a, 1e-12);
        assert_close(&gemm(Transpose::No, Transpose::No, 1.0, &i, &a), &a, 1e-12);
    }

    #[test]
    fn matches_reference_all_transpose_combos() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(m, k, n) in &[(5usize, 7usize, 3usize), (33, 65, 17), (70, 129, 40)] {
            for &ta in &[Transpose::No, Transpose::Yes] {
                for &tb in &[Transpose::No, Transpose::Yes] {
                    let (ar, ac) = match ta {
                        Transpose::No => (m, k),
                        Transpose::Yes => (k, m),
                    };
                    let (br, bc) = match tb {
                        Transpose::No => (k, n),
                        Transpose::Yes => (n, k),
                    };
                    let a = random_matrix(&mut rng, ar, ac);
                    let b = random_matrix(&mut rng, br, bc);
                    let fast = gemm(ta, tb, 1.3, &a, &b);
                    let slow = gemm_reference(ta, tb, 1.3, &a, &b);
                    assert_close(&fast, &slow, 1e-10);
                }
            }
        }
    }

    #[test]
    fn beta_accumulation() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_matrix(&mut rng, 10, 12);
        let b = random_matrix(&mut rng, 12, 8);
        let mut c = random_matrix(&mut rng, 10, 8);
        let c0 = c.clone();
        gemm_into(Transpose::No, Transpose::No, 2.0, &a, &b, 0.5, &mut c);
        let expected = gemm_reference(Transpose::No, Transpose::No, 2.0, &a, &b);
        for i in 0..10 {
            for j in 0..8 {
                let want = expected.get(i, j) + 0.5 * c0.get(i, j);
                assert!((c.get(i, j) - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn zero_alpha_only_scales_c() {
        let a = Matrix::from_fn(4, 4, |i, j| (i + j) as f64);
        let b = Matrix::identity(4);
        let mut c = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let c0 = c.clone();
        gemm_into(Transpose::No, Transpose::No, 0.0, &a, &b, 2.0, &mut c);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(c.get(i, j), 2.0 * c0.get(i, j));
            }
        }
    }

    #[test]
    fn empty_dimensions_are_ok() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        let c = gemm(Transpose::No, Transpose::No, 1.0, &a, &b);
        assert_eq!(c.shape(), (0, 3));
        let a = Matrix::zeros(4, 0);
        let b = Matrix::zeros(0, 3);
        let c = gemm(Transpose::No, Transpose::No, 1.0, &a, &b);
        assert_eq!(c.shape(), (4, 3));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic]
    fn inner_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        gemm(Transpose::No, Transpose::No, 1.0, &a, &b);
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = random_matrix(&mut rng, 120, 90);
        let b = random_matrix(&mut rng, 90, 75);
        let seq = gemm(Transpose::No, Transpose::No, 1.0, &a, &b);
        for threads in [1, 2, 4, 7] {
            let par = par_gemm(Transpose::No, Transpose::No, 1.0, &a, &b, threads);
            assert_close(&par, &seq, 1e-10);
        }
    }

    #[test]
    fn par_gemm_row_count_boundary_is_seamless() {
        // Satellite guard for the pool cutover: straddle the historical
        // `m < 2*threads` fallback boundary and require *exact* equality with
        // the sequential kernel on both sides, so changing which path runs
        // can never silently change results.
        let mut rng = StdRng::seed_from_u64(40);
        let threads = 4;
        for m in [
            PAR_MIN_ROWS_PER_THREAD * threads - 1, // fallback side
            PAR_MIN_ROWS_PER_THREAD * threads,     // pool side
        ] {
            // Keep the work term above PAR_MIN_WORK so only `m` decides.
            let (k, n) = (160, 100);
            assert!(m * k * n >= PAR_MIN_WORK);
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let par = par_gemm(Transpose::No, Transpose::No, 1.0, &a, &b, threads);
            let seq = gemm(Transpose::No, Transpose::No, 1.0, &a, &b);
            assert_eq!(par.as_slice(), seq.as_slice(), "m = {m}");
        }
    }

    #[test]
    fn par_gemm_work_boundary_is_seamless() {
        // Same guard across the `m·n·k < 1<<16` work fallback: 32·32·63 sits
        // just below the threshold, 32·32·64 exactly on it.
        let mut rng = StdRng::seed_from_u64(41);
        for k in [63usize, 64] {
            let (m, n) = (32, 32);
            assert_eq!(m * n * 64, PAR_MIN_WORK);
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let par = par_gemm(Transpose::No, Transpose::No, 1.0, &a, &b, 4);
            let seq = gemm(Transpose::No, Transpose::No, 1.0, &a, &b);
            assert_eq!(par.as_slice(), seq.as_slice(), "k = {k}");
        }
    }

    #[test]
    fn par_gemm_single_thread_falls_back() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = random_matrix(&mut rng, 50, 50);
        let b = random_matrix(&mut rng, 50, 50);
        let par = par_gemm(Transpose::No, Transpose::No, 2.0, &a, &b, 1);
        let seq = gemm(Transpose::No, Transpose::No, 2.0, &a, &b);
        assert_eq!(par.as_slice(), seq.as_slice());
    }

    #[test]
    fn ctx_gemm_is_bit_identical_for_every_transpose_and_thread_count() {
        let mut rng = StdRng::seed_from_u64(43);
        for threads in [1usize, 2, 4, 9] {
            let ctx = tucker_exec::ExecContext::new(threads);
            for &(m, k, n) in &[(33usize, 65usize, 17usize), (70, 129, 40)] {
                for &ta in &[Transpose::No, Transpose::Yes] {
                    for &tb in &[Transpose::No, Transpose::Yes] {
                        let (ar, ac) = match ta {
                            Transpose::No => (m, k),
                            Transpose::Yes => (k, m),
                        };
                        let (br, bc) = match tb {
                            Transpose::No => (k, n),
                            Transpose::Yes => (n, k),
                        };
                        let a = random_matrix(&mut rng, ar, ac);
                        let b = random_matrix(&mut rng, br, bc);
                        let pooled = gemm_ctx(&ctx, ta, tb, 1.3, &a, &b);
                        let seq = gemm(ta, tb, 1.3, &a, &b);
                        assert_eq!(pooled.as_slice(), seq.as_slice());
                    }
                }
            }
        }
    }

    #[test]
    fn ctx_gemm_into_respects_beta_across_panels() {
        let mut rng = StdRng::seed_from_u64(44);
        let ctx = tucker_exec::ExecContext::new(4);
        let a = random_matrix(&mut rng, 64, 70);
        let b = random_matrix(&mut rng, 70, 48);
        let mut c_par = random_matrix(&mut rng, 64, 48);
        let mut c_seq = c_par.clone();
        gemm_into_ctx(
            &ctx,
            Transpose::No,
            Transpose::No,
            1.5,
            &a,
            &b,
            0.25,
            &mut c_par,
        );
        gemm_into(Transpose::No, Transpose::No, 1.5, &a, &b, 0.25, &mut c_seq);
        assert_eq!(c_par.as_slice(), c_seq.as_slice());
    }

    #[test]
    fn parallel_transposed_a_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = random_matrix(&mut rng, 90, 110);
        let b = random_matrix(&mut rng, 90, 60);
        let seq = gemm(Transpose::Yes, Transpose::No, 1.0, &a, &b);
        let par = par_gemm(Transpose::Yes, Transpose::No, 1.0, &a, &b, 4);
        assert_close(&par, &seq, 1e-10);
    }

    #[test]
    fn gemm_slices_with_leading_dimension() {
        // Multiply a 2x2 submatrix embedded in a 2x4 buffer.
        let a = vec![1.0, 2.0, 99.0, 99.0, 3.0, 4.0, 99.0, 99.0];
        let b = vec![1.0, 0.0, 0.0, 1.0];
        let mut c = vec![0.0; 4];
        gemm_slices(
            Transpose::No,
            Transpose::No,
            1.0,
            &a,
            2,
            2,
            4,
            &b,
            2,
            2,
            2,
            0.0,
            &mut c,
            2,
        );
        assert_eq!(c, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn blocked_kernel_is_bitwise_equal_to_the_contract_reference() {
        // Shapes straddle the direct/packed cutover and the mc/kc/nc block
        // edges; the contract makes the path choice invisible bit-for-bit.
        let mut rng = StdRng::seed_from_u64(50);
        let blk = crate::blocking::current_blocking();
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (7, 9, 5),    // direct path
            (20, 21, 20), // just above DIRECT_WORK_MAX
            // Crosses the runtime mc and kc block edges.
            (blk.mc + 3, blk.kc + 5, (blk.nc / 4).max(16)),
            (97, 31, 130),
        ] {
            for &ta in &[Transpose::No, Transpose::Yes] {
                for &tb in &[Transpose::No, Transpose::Yes] {
                    for &(alpha, beta) in &[(1.0, 0.0), (1.3, 0.5), (-0.7, 1.0)] {
                        let (ar, ac) = match ta {
                            Transpose::No => (m, k),
                            Transpose::Yes => (k, m),
                        };
                        let (br, bc) = match tb {
                            Transpose::No => (k, n),
                            Transpose::Yes => (n, k),
                        };
                        let a = random_matrix(&mut rng, ar, ac);
                        let b = random_matrix(&mut rng, br, bc);
                        let c0 = random_matrix(&mut rng, m, n);
                        let mut fast = c0.clone();
                        let mut ref_ = c0.clone();
                        gemm_slices(
                            ta,
                            tb,
                            alpha,
                            a.as_slice(),
                            ar,
                            ac,
                            ac,
                            b.as_slice(),
                            br,
                            bc,
                            bc,
                            beta,
                            fast.as_mut_slice(),
                            n,
                        );
                        gemm_slices_reference(
                            ta,
                            tb,
                            alpha,
                            a.as_slice(),
                            ar,
                            ac,
                            ac,
                            b.as_slice(),
                            br,
                            bc,
                            bc,
                            beta,
                            ref_.as_mut_slice(),
                            n,
                        );
                        let fb: Vec<u64> = fast.as_slice().iter().map(|v| v.to_bits()).collect();
                        let rb: Vec<u64> = ref_.as_slice().iter().map(|v| v.to_bits()).collect();
                        assert_eq!(
                            fb, rb,
                            "m={m} k={k} n={n} ta={ta:?} tb={tb:?} α={alpha} β={beta}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn strided_operands_match_the_contract_reference_bitwise() {
        // Embed every operand in a wider buffer (ld > logical cols).
        let mut rng = StdRng::seed_from_u64(51);
        let (m, k, n) = (37usize, 29usize, 23usize);
        let (lda, ldb, ldc) = (k + 5, n + 2, n + 7);
        let a: Vec<f64> = (0..m * lda).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..k * ldb).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let c0: Vec<f64> = (0..m * ldc).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut fast = c0.clone();
        let mut ref_ = c0.clone();
        gemm_slices(
            Transpose::No,
            Transpose::No,
            1.1,
            &a,
            m,
            k,
            lda,
            &b,
            k,
            n,
            ldb,
            0.3,
            &mut fast,
            ldc,
        );
        gemm_slices_reference(
            Transpose::No,
            Transpose::No,
            1.1,
            &a,
            m,
            k,
            lda,
            &b,
            k,
            n,
            ldb,
            0.3,
            &mut ref_,
            ldc,
        );
        // Outside the logical n columns the gutter must be untouched by the
        // kernel; compare only live elements bitwise and gutters to c0.
        for i in 0..m {
            for j in 0..ldc {
                if j < n {
                    assert_eq!(fast[i * ldc + j].to_bits(), ref_[i * ldc + j].to_bits());
                } else {
                    assert_eq!(fast[i * ldc + j], c0[i * ldc + j], "gutter ({i},{j})");
                }
            }
        }
    }
}
