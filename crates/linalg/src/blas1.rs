//! Level-1 BLAS-style vector kernels.
//!
//! These are the scalar building blocks used by the higher-level kernels
//! (GEMM micro-kernels, Householder reflectors, Jacobi rotations). They are
//! written to auto-vectorize under `opt-level = 3`.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    // Accumulate in four lanes to give the optimizer an easy reassociation.
    let mut acc = [0.0f64; 4];
    let chunks = x.len() / 4;
    for i in 0..chunks {
        let b = i * 4;
        acc[0] += x[b] * y[b];
        acc[1] += x[b + 1] * y[b + 1];
        acc[2] += x[b + 2] * y[b + 2];
        acc[3] += x[b + 3] * y[b + 3];
    }
    let mut tail = 0.0;
    for i in chunks * 4..x.len() {
        tail += x[i] * y[i];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// `y ← a·x + y`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += a * xi;
    }
}

/// `x ← a·x`.
pub fn scal(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Euclidean norm, computed with scaling to avoid overflow/underflow.
pub fn nrm2(x: &[f64]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &xi in x {
        if xi != 0.0 {
            let absxi = xi.abs();
            if scale < absxi {
                let r = scale / absxi;
                ssq = 1.0 + ssq * r * r;
                scale = absxi;
            } else {
                let r = absxi / scale;
                ssq += r * r;
            }
        }
    }
    scale * ssq.sqrt()
}

/// Sum of squares of a slice (no overflow guard; used on normalized data).
pub fn sumsq(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

/// Index of the element with the largest absolute value, or `None` if empty.
pub fn iamax(x: &[f64]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut bestval = x[0].abs();
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v.abs() > bestval {
            best = i;
            bestval = v.abs();
        }
    }
    Some(best)
}

/// Copies `x` into `y`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn copy(x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "copy: length mismatch");
    y.copy_from_slice(x);
}

/// Swaps the contents of two slices.
pub fn swap(x: &mut [f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "swap: length mismatch");
    x.swap_with_slice(y);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn dot_basic() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(dot(&x, &y), 35.0);
    }

    #[test]
    fn dot_empty() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_basic() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn scal_basic() {
        let mut x = [1.0, -2.0, 3.0];
        scal(-0.5, &mut x);
        assert_eq!(x, [-0.5, 1.0, -1.5]);
    }

    #[test]
    fn nrm2_matches_naive() {
        let x = [3.0, 4.0];
        assert!(approx_eq(nrm2(&x), 5.0, 1e-14));
    }

    #[test]
    fn nrm2_large_values_no_overflow() {
        let x = [1e200, 1e200];
        let n = nrm2(&x);
        assert!(n.is_finite());
        assert!(approx_eq(n, 2.0f64.sqrt() * 1e200, 1e-12));
    }

    #[test]
    fn nrm2_tiny_values_no_underflow() {
        let x = [1e-200, 1e-200];
        let n = nrm2(&x);
        assert!(n > 0.0);
        assert!(approx_eq(n, 2.0f64.sqrt() * 1e-200, 1e-12));
    }

    #[test]
    fn nrm2_zero_vector() {
        assert_eq!(nrm2(&[0.0, 0.0, 0.0]), 0.0);
        assert_eq!(nrm2(&[]), 0.0);
    }

    #[test]
    fn iamax_basic() {
        assert_eq!(iamax(&[1.0, -5.0, 3.0]), Some(1));
        assert_eq!(iamax(&[]), None);
    }

    #[test]
    fn sumsq_basic() {
        assert!(approx_eq(sumsq(&[1.0, 2.0, 2.0]), 9.0, 1e-15));
    }

    #[test]
    fn copy_and_swap() {
        let x = [1.0, 2.0];
        let mut y = [0.0, 0.0];
        copy(&x, &mut y);
        assert_eq!(y, [1.0, 2.0]);
        let mut a = [1.0, 2.0];
        let mut b = [3.0, 4.0];
        swap(&mut a, &mut b);
        assert_eq!(a, [3.0, 4.0]);
        assert_eq!(b, [1.0, 2.0]);
    }
}
