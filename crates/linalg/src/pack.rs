//! Panel packing for the cache-blocked GEMM/SYRK microkernels.
//!
//! The blocked drivers in [`crate::gemm`] / [`crate::syrk`] copy each
//! `MC × KC` block of `op(A)` and `KC × NC` block of `op(B)` into contiguous,
//! 64-byte-aligned buffers before the microkernel runs over them:
//!
//! * `op(A)` blocks are stored as a sequence of `MR`-row panels, each laid
//!   out k-major (`dst[p·MR + r]` = row `r`, contraction index `p`), so the
//!   microkernel reads `MR` consecutive values per step. `alpha` is folded in
//!   here — `fl(alpha·a)` rounds exactly once per element, which is part of
//!   the accumulation contract (`docs/ARCHITECTURE.md` §4).
//! * `op(B)` blocks are stored as `NR`-column panels, k-major
//!   (`dst[p·NR + t]`), so each microkernel step loads one contiguous
//!   `NR`-vector.
//!
//! Ragged block edges are zero-padded up to the `MR`/`NR` grid; the padded
//! rows/columns are computed by the full-width microkernel and discarded at
//! writeback, never read back, so padding is invisible in the results.
//!
//! The buffers come from a thread-local `tucker-exec` [`Workspace`]
//! ([`with_pack_buffers`]): one pair per thread, recycled across calls, with
//! the workspace's 64-byte alignment guarantee.

use crate::gemm::Transpose;
use crate::microkernel::{MR, NR};
use std::cell::RefCell;
use tucker_exec::Workspace;

/// `n` rounded up to a multiple of `unit` (`unit` is a non-zero constant at
/// every call site).
pub fn padded(n: usize, unit: usize) -> usize {
    n.div_ceil(unit.max(1)) * unit.max(1)
}

/// Packs `alpha · op(A)[row0 .. row0+mb, p0 .. p0+kb]` into `dst` as
/// `MR`-row k-major panels, zero-padding rows `mb..` of the last panel.
///
/// `src` is the stored (untransposed) matrix with leading dimension `ld`;
/// `row0`/`mb` index rows *of `op(A)`*. `dst` must hold at least
/// `padded(mb, MR) · kb` elements; every one of them is written.
pub fn pack_a(
    dst: &mut [f64],
    trans: Transpose,
    alpha: f64,
    src: &[f64],
    ld: usize,
    row0: usize,
    mb: usize,
    p0: usize,
    kb: usize,
) {
    let mb_p = padded(mb, MR);
    match trans {
        Transpose::No => {
            // op(A)[i][p] = src[i·ld + p]: copy row slices into stride-MR
            // positions of the owning panel.
            for ip in 0..mb_p / MR {
                let panel = &mut dst[ip * MR * kb..(ip + 1) * MR * kb];
                for r in 0..MR {
                    let i = ip * MR + r;
                    if i < mb {
                        let row = &src[(row0 + i) * ld + p0..(row0 + i) * ld + p0 + kb];
                        for (p, &v) in row.iter().enumerate() {
                            panel[p * MR + r] = alpha * v;
                        }
                    } else {
                        for p in 0..kb {
                            panel[p * MR + r] = 0.0;
                        }
                    }
                }
            }
        }
        Transpose::Yes => {
            // op(A)[i][p] = src[p·ld + i]: each stored row p is contiguous in
            // i, landing contiguously in the panel too.
            for ip in 0..mb_p / MR {
                let panel = &mut dst[ip * MR * kb..(ip + 1) * MR * kb];
                let i_base = row0 + ip * MR;
                let rows_here = MR.min(mb - (ip * MR).min(mb));
                for p in 0..kb {
                    let srow = &src[(p0 + p) * ld..];
                    let out = &mut panel[p * MR..p * MR + MR];
                    for (r, o) in out.iter_mut().enumerate() {
                        *o = if r < rows_here {
                            alpha * srow[i_base + r]
                        } else {
                            0.0
                        };
                    }
                }
            }
        }
    }
}

/// Packs `op(B)[p0 .. p0+kb, col0 .. col0+nb]` into `dst` as `NR`-column
/// k-major panels, zero-padding columns `nb..` of the last panel.
///
/// `src` is the stored matrix with leading dimension `ld`; `col0`/`nb` index
/// columns *of `op(B)`*. `dst` must hold at least `kb · padded(nb, NR)`
/// elements; every one of them is written.
pub fn pack_b(
    dst: &mut [f64],
    trans: Transpose,
    src: &[f64],
    ld: usize,
    p0: usize,
    kb: usize,
    col0: usize,
    nb: usize,
) {
    let nb_p = padded(nb, NR);
    match trans {
        Transpose::No => {
            // op(B)[p][j] = src[p·ld + j]: stored rows are contiguous in j.
            for jp in 0..nb_p / NR {
                let panel = &mut dst[jp * kb * NR..(jp + 1) * kb * NR];
                let j_base = col0 + jp * NR;
                let cols_here = NR.min(nb - (jp * NR).min(nb));
                for p in 0..kb {
                    let srow = &src[(p0 + p) * ld..];
                    let out = &mut panel[p * NR..p * NR + NR];
                    for (t, o) in out.iter_mut().enumerate() {
                        *o = if t < cols_here { srow[j_base + t] } else { 0.0 };
                    }
                }
            }
        }
        Transpose::Yes => {
            // op(B)[p][j] = src[j·ld + p]: stored row j is contiguous in p,
            // written at stride NR within the panel.
            for jp in 0..nb_p / NR {
                let panel = &mut dst[jp * kb * NR..(jp + 1) * kb * NR];
                for t in 0..NR {
                    let j = jp * NR + t;
                    if j < nb {
                        let row = &src[(col0 + j) * ld + p0..(col0 + j) * ld + p0 + kb];
                        for (p, &v) in row.iter().enumerate() {
                            panel[p * NR + t] = v;
                        }
                    } else {
                        for p in 0..kb {
                            panel[p * NR + t] = 0.0;
                        }
                    }
                }
            }
        }
    }
}

thread_local! {
    /// One pack-buffer pool per thread: the pool threads of `tucker-exec`
    /// each recycle their own pair across every GEMM/SYRK panel they run.
    static PACK_WS: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Runs `f` with two 64-byte-aligned pack buffers of (at least) the
/// requested lengths, recycled through a thread-local [`Workspace`].
///
/// Contents are unspecified on entry (stale values from earlier packs); the
/// pack routines above overwrite every element they expose to the
/// microkernel. Re-entrant calls (a kernel invoked from inside `f`) fall
/// back to fresh single-use buffers instead of aliasing the pooled pair.
pub fn with_pack_buffers<R>(
    a_len: usize,
    b_len: usize,
    f: impl FnOnce(&mut [f64], &mut [f64]) -> R,
) -> R {
    with_scratch([a_len, b_len], |[a, b]| f(a, b))
}

/// Runs `f` with `N` 64-byte-aligned scratch buffers of the requested
/// lengths, recycled through the same thread-local [`Workspace`] as the pack
/// buffers. The blocked factorizations ([`crate::qr`], [`crate::eig`],
/// [`crate::svd`]) route their panel/accumulator storage through this instead
/// of allocating per call.
///
/// Contents are unspecified on entry (stale values from earlier takes);
/// callers must write every element they read back. The buffers are taken
/// *out* of the pool before `f` runs, so kernels invoked from inside `f`
/// (GEMM packing, nested factorizations) can take their own buffers without
/// aliasing these. A re-entrant call that catches the pool mid-borrow falls
/// back to fresh single-use buffers.
pub fn with_scratch<const N: usize, R>(
    lens: [usize; N],
    f: impl FnOnce([&mut [f64]; N]) -> R,
) -> R {
    let mut bufs: [tucker_exec::AlignedBuf; N] = PACK_WS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ws) => std::array::from_fn(|i| ws.take_aligned(lens[i])),
        Err(_) => {
            let mut fresh = Workspace::new();
            std::array::from_fn(|i| fresh.take_aligned(lens[i]))
        }
    });
    let result = f(bufs.each_mut().map(|b| b.as_mut_slice()));
    PACK_WS.with(|cell| {
        if let Ok(mut ws) = cell.try_borrow_mut() {
            for b in bufs {
                ws.give_aligned(b);
            }
        }
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_matrix(rows: usize, cols: usize) -> Vec<f64> {
        (0..rows * cols).map(|v| v as f64 + 1.0).collect()
    }

    #[test]
    fn pack_a_no_transpose_interleaves_and_pads() {
        // 3 rows (pads to MR), k = 2, alpha = 2.
        let src = seq_matrix(3, 2);
        let mut dst = vec![-1.0; MR * 2];
        pack_a(&mut dst, Transpose::No, 2.0, &src, 2, 0, 3, 0, 2);
        for p in 0..2 {
            for r in 0..MR {
                let want = if r < 3 { 2.0 * src[r * 2 + p] } else { 0.0 };
                assert_eq!(dst[p * MR + r], want, "p={p} r={r}");
            }
        }
    }

    #[test]
    fn pack_a_transpose_matches_op() {
        // Stored 3×5, op(A) = Aᵀ is 5×3; take rows 1..4 of op(A), k-range 1..3.
        let src = seq_matrix(3, 5);
        let (row0, mb, p0, kb) = (1usize, 3usize, 1usize, 2usize);
        let mut dst = vec![-1.0; padded(mb, MR) * kb];
        pack_a(&mut dst, Transpose::Yes, 1.0, &src, 5, row0, mb, p0, kb);
        for p in 0..kb {
            for r in 0..MR {
                let want = if r < mb {
                    src[(p0 + p) * 5 + row0 + r]
                } else {
                    0.0
                };
                assert_eq!(dst[p * MR + r], want, "p={p} r={r}");
            }
        }
    }

    #[test]
    fn pack_b_no_transpose_pads_columns() {
        // op(B) = B stored 4×6 (ld 6); pack cols 3..6 (nb = 3 pads to NR).
        let src = seq_matrix(4, 6);
        let (p0, kb, col0, nb) = (1usize, 3usize, 3usize, 3usize);
        let mut dst = vec![-1.0; kb * padded(nb, NR)];
        pack_b(&mut dst, Transpose::No, &src, 6, p0, kb, col0, nb);
        for p in 0..kb {
            for t in 0..NR {
                let want = if t < nb {
                    src[(p0 + p) * 6 + col0 + t]
                } else {
                    0.0
                };
                assert_eq!(dst[p * NR + t], want, "p={p} t={t}");
            }
        }
    }

    #[test]
    fn pack_b_transpose_matches_op() {
        // Stored 5×4 (ld 4); op(B) = Bᵀ is 4×5: pack k-range 1..4, cols 0..5.
        let src = seq_matrix(5, 4);
        let (p0, kb, col0, nb) = (1usize, 3usize, 0usize, 5usize);
        let mut dst = vec![-1.0; kb * padded(nb, NR)];
        pack_b(&mut dst, Transpose::Yes, &src, 4, p0, kb, col0, nb);
        for jp in 0..padded(nb, NR) / NR {
            let panel = &dst[jp * kb * NR..(jp + 1) * kb * NR];
            for p in 0..kb {
                for t in 0..NR {
                    let j = jp * NR + t;
                    let want = if j < nb {
                        src[(col0 + j) * 4 + p0 + p]
                    } else {
                        0.0
                    };
                    assert_eq!(panel[p * NR + t], want, "jp={jp} p={p} t={t}");
                }
            }
        }
    }

    #[test]
    fn with_pack_buffers_recycles_per_thread() {
        let first = with_pack_buffers(256, 512, |a, b| {
            assert_eq!(a.len(), 256);
            assert_eq!(b.len(), 512);
            assert_eq!(a.as_ptr() as usize % tucker_exec::BUFFER_ALIGN, 0);
            assert_eq!(b.as_ptr() as usize % tucker_exec::BUFFER_ALIGN, 0);
            a.as_ptr() as usize + b.as_ptr() as usize
        });
        // Same thread, same or smaller sizes ⇒ the pooled pair comes back.
        let second = with_pack_buffers(256, 512, |a, b| a.as_ptr() as usize + b.as_ptr() as usize);
        assert_eq!(first, second);
    }

    #[test]
    fn reentrant_pack_buffers_do_not_alias() {
        with_pack_buffers(64, 64, |a, _b| {
            let outer = a.as_ptr() as usize;
            with_pack_buffers(64, 64, |ia, ib| {
                assert_ne!(ia.as_ptr() as usize, outer, "re-entrant call aliased");
                assert_eq!(ia.len(), 64);
                assert_eq!(ib.len(), 64);
            });
        });
    }

    #[test]
    fn with_scratch_hands_out_disjoint_aligned_buffers() {
        with_scratch([16usize, 32, 48], |[a, b, c]| {
            assert_eq!(a.len(), 16);
            assert_eq!(b.len(), 32);
            assert_eq!(c.len(), 48);
            for s in [&*a, &*b, &*c] {
                assert_eq!(s.as_ptr() as usize % tucker_exec::BUFFER_ALIGN, 0);
            }
            a.fill(1.0);
            b.fill(2.0);
            c.fill(3.0);
            assert!(a.iter().all(|&x| x == 1.0));
            assert!(b.iter().all(|&x| x == 2.0));
            assert!(c.iter().all(|&x| x == 3.0));
        });
    }

    #[test]
    fn padded_rounds_up() {
        assert_eq!(padded(0, 8), 0);
        assert_eq!(padded(1, 8), 8);
        assert_eq!(padded(8, 8), 8);
        assert_eq!(padded(9, 4), 12);
    }
}
