//! Dense linear algebra kernels for the parallel Tucker decomposition.
//!
//! The paper (Austin, Ballard & Kolda, IPDPS 2016) relies on vendor BLAS/LAPACK
//! (`dgemm`, `dsyrk`, `dsyevx`) for all local computation. This crate provides
//! from-scratch, pure-Rust replacements with the same mathematical contracts:
//!
//! * [`Matrix`] — a dense, row-major, owned matrix of `f64`.
//! * [`gemm`](mod@gemm) — general matrix-matrix multiplication with transpose options,
//!   cache-blocked and optionally multi-threaded.
//! * [`syrk`](mod@syrk) — symmetric rank-k update `C = A Aᵀ` (the Gram kernel).
//! * [`eig`] — symmetric eigendecomposition (Householder tridiagonalization +
//!   implicit-shift QL, with a cyclic Jacobi fallback), returning eigenpairs in
//!   descending eigenvalue order as the Tucker rank-selection logic requires.
//! * [`qr`] — Householder QR factorization (the numerical-stability option
//!   discussed in Sec. IX of the paper).
//! * [`svd`] — one-sided Jacobi SVD (direct singular vectors, the alternative to
//!   the Gram-matrix approach).
//!
//! All kernels operate on `f64` only, matching the double-precision setting of
//! the paper's experiments.

pub mod blas1;
pub mod blocking;
pub mod eig;
pub mod gemm;
pub mod matrix;
pub mod microkernel;
pub mod pack;
pub mod qr;
pub mod simd;
pub mod svd;
pub mod syrk;

pub use blas1::{axpy, dot, nrm2, scal};
pub use blocking::{current_blocking, detected_caches, force_blocking, Blocking};
pub use eig::{sym_eig, sym_eig_ctx, sym_eig_desc, sym_eig_reference, sym_eig_unblocked, SymEig};
pub use gemm::{gemm, gemm_ctx, gemm_into, gemm_into_ctx, gemm_slices_ctx, par_gemm, Transpose};
pub use matrix::Matrix;
pub use qr::{
    householder_qr, householder_qr_ctx, householder_qr_reference, householder_qr_unblocked,
    QrFactors,
};
pub use simd::{current_tier, detected_tier, force_tier, supported_tiers, SimdTier};
pub use svd::{jacobi_svd, jacobi_svd_ctx, jacobi_svd_reference, jacobi_svd_unblocked, Svd};
pub use syrk::{par_syrk, syrk, syrk_ctx, syrk_into, syrk_rows_slices, triangular_scatter_mirror};

/// Machine-epsilon-scale tolerance used by iterative kernels in this crate.
pub const EPS: f64 = f64::EPSILON;

/// Returns true when `a` and `b` agree to within `tol` absolutely or relatively.
///
/// Used throughout the test suites of this workspace; exposed here so dependent
/// crates share a single definition.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-10));
        assert!(!approx_eq(1.0, 1.1, 1e-10));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1e12, 1e12 * (1.0 + 1e-12), 1e-10));
        assert!(!approx_eq(1e12, 1.01e12, 1e-10));
    }

    #[test]
    fn approx_eq_zero() {
        assert!(approx_eq(0.0, 0.0, 1e-15));
        assert!(approx_eq(0.0, 1e-16, 1e-15));
    }
}
