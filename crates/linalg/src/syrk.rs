//! Symmetric rank-k update: `C = alpha · A·Aᵀ + beta · C` (the `dsyrk` replacement).
//!
//! The Gram-matrix computation `S = Y(n) Y(n)ᵀ` (paper Alg. 1 line 4, Alg. 4
//! line 5) is the single most expensive kernel of ST-HOSVD for the first mode,
//! so it gets a dedicated symmetric kernel that only computes the lower
//! triangle and mirrors it, roughly halving the flops compared to a plain GEMM.
//!
//! **Determinism contract (renegotiated in the microkernel PR):** each
//! lower-triangle element `c[i][j]` is one running accumulator adding
//! `fl(fl(alpha·a[i,p]) · a[j,p])` for `p` strictly ascending, with no FMA —
//! the same recurrence as [`crate::gemm`] with `op(B) = Aᵀ`. This *changed
//! the bits once*: the previous kernel computed `alpha · dot(aᵢ, aⱼ)` with
//! [`crate::blas1::dot`]'s 4-lane split accumulation. In exchange, the bits
//! are now pinned by the shared microkernel contract: independent of the
//! SIMD tier, the cache blocking, the packed/direct cutover, and the row
//! partition (thread count).

use crate::gemm::Transpose;
use crate::matrix::Matrix;
use std::ops::Range;
use tucker_exec::{triangle_row_chunks, ExecContext};
use tucker_obs::metrics::Counter;

/// Kernel accounting (see `tucker-obs`): calls count sequential-kernel and
/// row-panel invocations; flops count the lower-triangle multiply-adds,
/// `2k · Σ(i+1) = m(m+1)k` for a full `m × m` update.
static SYRK_CALLS: Counter = Counter::new("linalg.syrk.calls");
static SYRK_FLOPS: Counter = Counter::new("linalg.syrk.flops");

/// Lower-triangle flop count of rows `0..n` of an `A·Aᵀ` with inner
/// dimension `k`: `2k` flops per dot, `n(n+1)/2` dots.
fn triangle_flops(n: usize, k: usize) -> u64 {
    (n as u64) * (n as u64 + 1) * (k as u64)
}

/// Computes `A · Aᵀ` for a row-major `m × k` slice `a` with leading dimension
/// `lda`, accumulating into the row-major `m × m` slice `c` (leading dimension
/// `ldc`) as `C ← alpha·A·Aᵀ + beta·C`.
///
/// Only the lower triangle is computed directly; the strict upper triangle is
/// filled by mirroring at the end, so `beta` must scale a symmetric `C` for the
/// result to remain symmetric (this is always the case in the Tucker kernels).
pub fn syrk_slices(
    alpha: f64,
    a: &[f64],
    m: usize,
    k: usize,
    lda: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    if m > 0 {
        assert!(a.len() >= (m - 1) * lda + k, "syrk: A slice too short");
        assert!(c.len() >= (m - 1) * ldc + m, "syrk: C slice too short");
    }
    // Scale existing C.
    for i in 0..m {
        let row = &mut c[i * ldc..i * ldc + m];
        if beta == 0.0 {
            row.fill(0.0);
        } else if beta != 1.0 {
            for v in row.iter_mut() {
                *v *= beta;
            }
        }
    }
    if alpha == 0.0 || k == 0 {
        // Still must be symmetric; the scaled C is assumed symmetric already.
        return;
    }
    SYRK_CALLS.inc();
    SYRK_FLOPS.add(triangle_flops(m, k));
    syrk_lower(alpha, a, k, lda, 0..m, c, ldc);
    // Mirror to the upper triangle.
    for i in 0..m {
        for j in i + 1..m {
            c[i * ldc + j] = c[j * ldc + i];
        }
    }
}

/// Computes `A · Aᵀ` and returns it as a new symmetric [`Matrix`].
pub fn syrk(a: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), a.rows());
    syrk_into(1.0, a, 0.0, &mut c);
    c
}

/// `C ← alpha·A·Aᵀ + beta·C` for [`Matrix`] operands.
pub fn syrk_into(alpha: f64, a: &Matrix, beta: f64, c: &mut Matrix) {
    assert_eq!(
        c.shape(),
        (a.rows(), a.rows()),
        "syrk_into: output must be square with A's row count"
    );
    let lda = a.cols();
    let ldc = c.cols();
    syrk_slices(
        alpha,
        a.as_slice(),
        a.rows(),
        a.cols(),
        lda,
        beta,
        c.as_mut_slice(),
        ldc,
    );
}

/// Accumulates the **lower-triangle rows** `rows` of `alpha · A·Aᵀ` into a
/// row panel `c_panel` whose first row corresponds to global row
/// `rows.start` (leading dimension `ldc`). No mirroring is performed.
///
/// This is the scatter unit of the pool-backed Gram kernels: disjoint row
/// ranges touch disjoint panel slices, and each element `c[i][j]` follows
/// exactly the per-element recurrence the sequential [`syrk_slices`]
/// computes (module docs), so triangular row-parallelism is bit-identical to
/// the sequential kernel.
pub fn syrk_rows_slices(
    alpha: f64,
    a: &[f64],
    k: usize,
    lda: usize,
    rows: Range<usize>,
    c_panel: &mut [f64],
    ldc: usize,
) {
    let row0 = rows.start;
    if rows.is_empty() {
        return;
    }
    SYRK_CALLS.inc();
    SYRK_FLOPS.add(triangle_flops(rows.end, k) - triangle_flops(rows.start, k));
    assert!(
        a.len() >= (rows.end - 1) * lda + k,
        "syrk_rows: A slice too short"
    );
    assert!(
        c_panel.len() >= (rows.end - 1 - row0) * ldc + rows.end,
        "syrk_rows: C panel too short"
    );
    syrk_lower(alpha, a, k, lda, rows, c_panel, ldc);
}

/// Shared lower-triangle engine behind [`syrk_slices`] and
/// [`syrk_rows_slices`]: accumulates rows `rows` of `alpha · A·Aᵀ`'s lower
/// triangle into `c_panel` (first panel row = global row `rows.start`).
///
/// Small row ranges run a direct scalar loop; larger ones run the packed
/// microkernel driver with `op(B) = Aᵀ` and triangle masking. Both realize
/// the per-element recurrence from the module docs, so the cutover — like
/// the SIMD tier and the block sizes — is invisible in the bits.
fn syrk_lower(
    alpha: f64,
    a: &[f64],
    k: usize,
    lda: usize,
    rows: Range<usize>,
    c_panel: &mut [f64],
    ldc: usize,
) {
    use crate::blocking::SMALL_PROBLEM_MADDS;
    let row0 = rows.start;
    let m_end = rows.end;
    if rows.is_empty() || k == 0 || alpha == 0.0 {
        return;
    }
    // Lower-triangle multiply-add count for this row range.
    let madds = (triangle_flops(m_end, k) - triangle_flops(row0, k)) / 2;
    if madds as usize <= SMALL_PROBLEM_MADDS {
        for i in rows {
            let arow_i = &a[i * lda..i * lda + k];
            let crow = &mut c_panel[(i - row0) * ldc..(i - row0) * ldc + i + 1];
            for (j, cv) in crow.iter_mut().enumerate() {
                let arow_j = &a[j * lda..j * lda + k];
                let mut acc = *cv;
                for p in 0..k {
                    acc += (alpha * arow_i[p]) * arow_j[p];
                }
                *cv = acc;
            }
        }
        return;
    }
    let tier = crate::simd::current_tier();
    let blk = crate::blocking::current_blocking();
    let a_len =
        crate::pack::padded(blk.mc.min(m_end - row0), crate::microkernel::MR) * blk.kc.min(k);
    let b_len = blk.kc.min(k) * crate::pack::padded(blk.nc.min(m_end), crate::microkernel::NR);
    crate::pack::with_pack_buffers(a_len, b_len, |a_pack, b_pack| {
        let mut jc = 0;
        while jc < m_end {
            let nb = blk.nc.min(m_end - jc);
            let mut pc = 0;
            while pc < k {
                let kb = blk.kc.min(k - pc);
                // op(B) = Aᵀ: column j of the update is row j of A.
                crate::pack::pack_b(b_pack, Transpose::Yes, a, lda, pc, kb, jc, nb);
                let mut ic = row0;
                while ic < m_end {
                    let mb = blk.mc.min(m_end - ic);
                    // Skip row blocks that lie entirely above this column
                    // block's diagonal intersection.
                    if ic + mb > jc {
                        crate::pack::pack_a(a_pack, Transpose::No, alpha, a, lda, ic, mb, pc, kb);
                        crate::microkernel::block_kernel(
                            tier,
                            a_pack,
                            b_pack,
                            mb,
                            nb,
                            kb,
                            &mut c_panel[(ic - row0) * ldc + jc..],
                            ldc,
                            Some((ic, jc)),
                        );
                    }
                    ic += mb;
                }
                pc += kb;
            }
            jc += nb;
        }
    });
}

/// Executable statement of the SYRK determinism contract (lower triangle +
/// mirror): [`syrk_slices`] must agree with this **bit for bit** on every
/// input — enforced by the proptest battery.
pub fn syrk_slices_reference(
    alpha: f64,
    a: &[f64],
    m: usize,
    k: usize,
    lda: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    for i in 0..m {
        for j in 0..=i {
            let mut acc = if beta == 0.0 {
                0.0
            } else if beta == 1.0 {
                c[i * ldc + j]
            } else {
                beta * c[i * ldc + j]
            };
            if alpha != 0.0 {
                for p in 0..k {
                    acc += (alpha * a[i * lda + p]) * a[j * lda + p];
                }
            }
            c[i * ldc + j] = acc;
        }
    }
    // Mirror, exactly like the kernel (the kernel's pre-scaled upper
    // triangle is overwritten here either way).
    for i in 0..m {
        for j in i + 1..m {
            c[i * ldc + j] = c[j * ldc + i];
        }
    }
}

/// Scatters area-balanced lower-triangle row ranges of an `m × m` matrix
/// (leading dimension `ldc`) across `ctx`, runs `fill(rows, panel)` on each
/// disjoint row panel, then mirrors the strict upper triangle once. `fill`
/// must write only columns `0..=i` of each row `i` — the shared scatter
/// skeleton of every pool-backed symmetric Gram kernel, kept in one place so
/// the determinism-critical balance/mirror logic cannot diverge.
pub fn triangular_scatter_mirror<F>(
    ctx: &ExecContext,
    c: &mut [f64],
    m: usize,
    ldc: usize,
    parts: usize,
    fill: F,
) where
    F: Fn(Range<usize>, &mut [f64]) + Sync,
{
    ctx.for_each_row_panel(c, ldc, triangle_row_chunks(m, parts), fill);
    for i in 0..m {
        for j in i + 1..m {
            c[i * ldc + j] = c[j * ldc + i];
        }
    }
}

/// Pool-backed `A·Aᵀ`: scatters balanced lower-triangle row ranges onto the
/// threads of `ctx`, then mirrors once. Bit-identical to [`syrk`] for every
/// thread count.
pub fn syrk_ctx(ctx: &ExecContext, a: &Matrix) -> Matrix {
    let m = a.rows();
    let k = a.cols();
    let _span = tucker_obs::span!(
        "syrk",
        m = m,
        k = k,
        tier = crate::simd::current_tier().id()
    );
    let mut c = Matrix::zeros(m, m);
    let parts = ctx.partition_for_work(m, m * m * k / 2);
    if parts <= 1 {
        syrk_into(1.0, a, 0.0, &mut c);
        return c;
    }
    let lda = a.cols();
    let a_slice = a.as_slice();
    triangular_scatter_mirror(ctx, c.as_mut_slice(), m, m, parts, |rows, panel| {
        syrk_rows_slices(1.0, a_slice, k, lda, rows, panel, m);
    });
    c
}

/// Thread-parallel `A·Aᵀ` over up to `threads` workers of the **shared
/// process pool** (no threads are spawned per call). Thin wrapper over
/// [`syrk_ctx`] preserving the historical small-size fallbacks.
pub fn par_syrk(a: &Matrix, threads: usize) -> Matrix {
    let m = a.rows();
    let k = a.cols();
    if threads <= 1 || m < 2 * threads || m * m * k < 1 << 16 {
        return syrk(a);
    }
    syrk_ctx(&ExecContext::global().with_budget(threads), a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, Transpose};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
        Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn matches_gemm() {
        let mut rng = StdRng::seed_from_u64(10);
        for &(m, k) in &[(3usize, 5usize), (17, 33), (64, 10), (1, 7)] {
            let a = random_matrix(&mut rng, m, k);
            let s = syrk(&a);
            let g = gemm(Transpose::No, Transpose::Yes, 1.0, &a, &a);
            for (x, y) in s.as_slice().iter().zip(g.as_slice()) {
                assert!((x - y).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn result_is_symmetric_and_psd_diagonal() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_matrix(&mut rng, 20, 9);
        let s = syrk(&a);
        for i in 0..20 {
            assert!(s.get(i, i) >= 0.0);
            for j in 0..20 {
                assert_eq!(s.get(i, j), s.get(j, i));
            }
        }
    }

    #[test]
    fn alpha_beta_accumulation() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = random_matrix(&mut rng, 8, 5);
        let sym_seed = syrk(&a); // symmetric starting C
        let mut c = sym_seed.clone();
        syrk_into(2.0, &a, 0.5, &mut c);
        for i in 0..8 {
            for j in 0..8 {
                let want = 2.0 * sym_seed.get(i, j) + 0.5 * sym_seed.get(i, j);
                assert!((c.get(i, j) - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn zero_k_gives_zero() {
        let a = Matrix::zeros(4, 0);
        let s = syrk(&a);
        assert!(s.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = random_matrix(&mut rng, 100, 60);
        let seq = syrk(&a);
        for threads in [2, 4, 5] {
            let par = par_syrk(&a, threads);
            for (x, y) in par.as_slice().iter().zip(seq.as_slice()) {
                assert!((x - y).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn kernel_is_bitwise_equal_to_the_contract_reference() {
        let mut rng = StdRng::seed_from_u64(14);
        // Spans the direct/packed cutover and the MC/NC block edges.
        for &(m, k) in &[(1usize, 1usize), (9, 7), (33, 20), (100, 60), (130, 257)] {
            for &(alpha, beta) in &[(1.0, 0.0), (2.0, 0.5), (-0.3, 1.0)] {
                let a = random_matrix(&mut rng, m, k);
                let c0 = syrk(&random_matrix(&mut rng, m, 3)); // symmetric seed
                let mut fast = c0.clone();
                let mut ref_ = c0.clone();
                syrk_slices(alpha, a.as_slice(), m, k, k, beta, fast.as_mut_slice(), m);
                syrk_slices_reference(alpha, a.as_slice(), m, k, k, beta, ref_.as_mut_slice(), m);
                let fb: Vec<u64> = fast.as_slice().iter().map(|v| v.to_bits()).collect();
                let rb: Vec<u64> = ref_.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(fb, rb, "m={m} k={k} α={alpha} β={beta}");
            }
        }
    }

    #[test]
    fn row_panels_are_bitwise_equal_to_the_full_kernel() {
        let mut rng = StdRng::seed_from_u64(15);
        let (m, k) = (120usize, 70usize);
        let a = random_matrix(&mut rng, m, k);
        let mut full = Matrix::zeros(m, m);
        syrk_slices(1.0, a.as_slice(), m, k, k, 0.0, full.as_mut_slice(), m);
        // Rebuild the lower triangle from uneven panels.
        let mut panels = Matrix::zeros(m, m);
        for rows in [0..17usize, 17..64, 64..m] {
            let row0 = rows.start;
            syrk_rows_slices(
                1.0,
                a.as_slice(),
                k,
                k,
                rows,
                &mut panels.as_mut_slice()[row0 * m..],
                m,
            );
        }
        for i in 0..m {
            for j in 0..=i {
                assert_eq!(
                    panels.get(i, j).to_bits(),
                    full.get(i, j).to_bits(),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn gram_of_orthonormal_rows_is_identity() {
        // Rows of the identity are orthonormal, so A·Aᵀ = I.
        let a = Matrix::identity(6);
        let s = syrk(&a);
        for i in 0..6 {
            for j in 0..6 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((s.get(i, j) - want).abs() < 1e-14);
            }
        }
    }
}
