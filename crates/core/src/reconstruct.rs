//! Full and partial reconstruction from a Tucker decomposition (eq. (1)).
//!
//! A key selling point of Tucker compression for scientific data (Sec. II-C,
//! Sec. VII of the paper) is that analysts can reconstruct *only the part they
//! need* — one species, a few time steps, a cropped or coarsened grid — by
//! multiplying the (small) core with **row subsets** of the factor matrices.
//! The cost and memory then scale with the size of the requested subtensor,
//! not the original data, which is what makes laptop-scale analysis of
//! terabyte simulations possible.

use crate::tucker::TuckerTensor;
use tucker_exec::ExecContext;
use tucker_linalg::Matrix;
use tucker_tensor::{ttm_chain_ctx, DenseTensor, SubtensorSpec, TtmTranspose};

/// Reconstructs the full tensor `X̃ = G × {U⁽ⁿ⁾}`.
pub fn reconstruct_full(t: &TuckerTensor) -> DenseTensor {
    t.reconstruct()
}

/// [`reconstruct_full`] on an explicit execution context.
pub fn reconstruct_full_ctx(t: &TuckerTensor, ctx: &ExecContext) -> DenseTensor {
    t.reconstruct_ctx(ctx)
}

/// Reconstructs only the subtensor selected by `spec`, without ever forming the
/// full tensor: mode `n` of the result contains the rows `spec.mode_indices(n)`
/// of the reconstruction.
pub fn reconstruct_subtensor(t: &TuckerTensor, spec: &SubtensorSpec) -> DenseTensor {
    reconstruct_subtensor_ctx(t, spec, ExecContext::global())
}

/// [`reconstruct_subtensor`] on an explicit execution context.
pub fn reconstruct_subtensor_ctx(
    t: &TuckerTensor,
    spec: &SubtensorSpec,
    ctx: &ExecContext,
) -> DenseTensor {
    assert_eq!(
        spec.ndims(),
        t.ndims(),
        "reconstruct_subtensor: spec must cover every mode"
    );
    let dims = t.original_dims();
    spec.validate(&dims);
    // Select the requested rows of each factor, then apply the usual chain.
    let sub_factors: Vec<Matrix> = t
        .factors
        .iter()
        .enumerate()
        .map(|(n, u)| u.select_rows(spec.mode_indices(n)))
        .collect();
    let refs: Vec<&Matrix> = sub_factors.iter().collect();
    ttm_chain_ctx(ctx, &t.core, &refs, TtmTranspose::NoTranspose)
}

/// Reconstructs a single mode-`n` slice at index `idx` (e.g. one variable or
/// one time step), returning a tensor whose mode `n` has size 1.
pub fn reconstruct_slice(t: &TuckerTensor, mode: usize, idx: usize) -> DenseTensor {
    let dims = t.original_dims();
    let spec = SubtensorSpec::all(&dims).restrict_mode(mode, vec![idx]);
    reconstruct_subtensor(t, &spec)
}

/// Reconstructs a single element `X̃[idx]` by contracting the core against one
/// row of every factor matrix:
/// `X̃[i₁,…,i_N] = Σ_{r₁,…,r_N} G[r₁,…,r_N] · ∏_n U⁽ⁿ⁾[i_n, r_n]`.
///
/// Cost is `O(N · ∏ R_n)` — it never touches the original dimensions, which is
/// what makes random-access queries against a compressed artifact cheap
/// (Sec. II-C of the paper; the `tucker-store` query engine is built on this).
pub fn reconstruct_element(t: &TuckerTensor, idx: &[usize]) -> f64 {
    assert_eq!(
        idx.len(),
        t.ndims(),
        "reconstruct_element: index must cover every mode"
    );
    for (n, (&i, u)) in idx.iter().zip(t.factors.iter()).enumerate() {
        assert!(
            i < u.rows(),
            "reconstruct_element: index {i} out of range in mode {n} (dim {})",
            u.rows()
        );
    }
    let ranks = t.ranks();
    let mut r_idx = vec![0usize; ranks.len()];
    let mut acc = 0.0;
    for &g in t.core.as_slice() {
        let mut w = g;
        for (n, &r) in r_idx.iter().enumerate() {
            w *= t.factors[n].get(idx[n], r);
        }
        acc += w;
        // Advance the core multi-index, first mode fastest (storage order).
        for (k, i) in r_idx.iter_mut().enumerate() {
            *i += 1;
            if *i < ranks[k] {
                break;
            }
            *i = 0;
        }
    }
    acc
}

/// Reconstructs a coarsened view: every `stride`-th index in the given modes,
/// all indices elsewhere. `stride` must be at least 1.
pub fn reconstruct_coarse(t: &TuckerTensor, coarse_modes: &[usize], stride: usize) -> DenseTensor {
    assert!(stride >= 1, "reconstruct_coarse: stride must be >= 1");
    let dims = t.original_dims();
    let mut spec = SubtensorSpec::all(&dims);
    for &m in coarse_modes {
        let indices: Vec<usize> = (0..dims[m]).step_by(stride).collect();
        spec = spec.restrict_mode(m, indices);
    }
    reconstruct_subtensor(t, &spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sthosvd::{st_hosvd, SthosvdOptions};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tucker_tensor::extract_subtensor;

    fn compressed_random(
        rng: &mut StdRng,
        dims: &[usize],
        eps: f64,
    ) -> (DenseTensor, TuckerTensor) {
        let x = DenseTensor::from_fn(dims, |idx| {
            let mut v = 0.0;
            for (k, &i) in idx.iter().enumerate() {
                v += ((k + 1) as f64 * 0.1 * i as f64).sin();
            }
            v + 0.01 * rng.gen_range(-1.0..1.0)
        });
        let r = st_hosvd(&x, &SthosvdOptions::with_tolerance(eps));
        (x, r.tucker)
    }

    #[test]
    fn subtensor_matches_full_reconstruction() {
        let mut rng = StdRng::seed_from_u64(100);
        let (_, t) = compressed_random(&mut rng, &[12, 10, 8], 1e-6);
        let full = reconstruct_full(&t);
        let spec = SubtensorSpec::from_indices(vec![vec![0, 5, 11], vec![2, 3], vec![7]]);
        let partial = reconstruct_subtensor(&t, &spec);
        let expected = extract_subtensor(&full, &spec);
        assert_eq!(partial.dims(), expected.dims());
        for (a, b) in partial.as_slice().iter().zip(expected.as_slice()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn slice_reconstruction_matches_full() {
        let mut rng = StdRng::seed_from_u64(101);
        let (_, t) = compressed_random(&mut rng, &[9, 8, 7], 1e-6);
        let full = reconstruct_full(&t);
        let slice = reconstruct_slice(&t, 1, 3);
        assert_eq!(slice.dims(), &[9, 1, 7]);
        for i in 0..9 {
            for k in 0..7 {
                assert!((slice.get(&[i, 0, k]) - full.get(&[i, 3, k])).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn coarse_reconstruction_strides_spatial_modes() {
        let mut rng = StdRng::seed_from_u64(102);
        let (_, t) = compressed_random(&mut rng, &[10, 10, 6], 1e-6);
        let full = reconstruct_full(&t);
        let coarse = reconstruct_coarse(&t, &[0, 1], 2);
        assert_eq!(coarse.dims(), &[5, 5, 6]);
        for i in 0..5 {
            for j in 0..5 {
                for k in 0..6 {
                    assert!((coarse.get(&[i, j, k]) - full.get(&[2 * i, 2 * j, k])).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn partial_reconstruction_is_close_to_original_subtensor() {
        // With a tight tolerance, a reconstructed subtensor approximates the
        // corresponding slice of the original data.
        let mut rng = StdRng::seed_from_u64(103);
        let (x, t) = compressed_random(&mut rng, &[14, 12, 10], 1e-4);
        let spec = SubtensorSpec::from_ranges(&[(2, 5), (0, 12), (4, 3)]);
        let approx = reconstruct_subtensor(&t, &spec);
        let exact = extract_subtensor(&x, &spec);
        let err = tucker_tensor::relative_error(&exact, &approx);
        assert!(err < 1e-2, "partial reconstruction error too large: {err}");
    }

    #[test]
    fn element_matches_full_reconstruction() {
        let mut rng = StdRng::seed_from_u64(105);
        let (_, t) = compressed_random(&mut rng, &[9, 7, 8], 1e-6);
        let full = reconstruct_full(&t);
        for idx in [[0usize, 0, 0], [8, 6, 7], [4, 3, 2], [1, 6, 0]] {
            let e = reconstruct_element(&t, &idx);
            assert!(
                (e - full.get(&idx)).abs() < 1e-10,
                "element {idx:?}: {e} vs {}",
                full.get(&idx)
            );
        }
    }

    #[test]
    #[should_panic]
    fn element_index_out_of_range_panics() {
        let mut rng = StdRng::seed_from_u64(106);
        let (_, t) = compressed_random(&mut rng, &[5, 5, 5], 1e-3);
        reconstruct_element(&t, &[5, 0, 0]);
    }

    #[test]
    #[should_panic]
    fn wrong_spec_arity_panics() {
        let mut rng = StdRng::seed_from_u64(104);
        let (_, t) = compressed_random(&mut rng, &[6, 6, 6], 1e-3);
        let spec = SubtensorSpec::from_ranges(&[(0, 2), (0, 2)]);
        reconstruct_subtensor(&t, &spec);
    }
}
