//! The Tucker tensor: a core tensor plus one factor matrix per mode.

use serde::{Deserialize, Serialize};
use tucker_linalg::Matrix;
use tucker_tensor::{DenseTensor, TtmTranspose};

/// A Tucker decomposition `X ≈ G ×₁ U⁽¹⁾ ×₂ U⁽²⁾ ⋯ ×_N U⁽ᴺ⁾`.
///
/// `core` has dimensions `R_1 × … × R_N` and `factors[n]` is `I_n × R_n` with
/// (approximately) orthonormal columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuckerTensor {
    /// The core tensor `G`.
    pub core: DenseTensor,
    /// The factor matrices `U⁽ⁿ⁾`, one per mode, each `I_n × R_n`.
    pub factors: Vec<Matrix>,
}

impl TuckerTensor {
    /// Creates a Tucker tensor from a core and factor matrices, validating shapes.
    ///
    /// # Panics
    /// Panics if the number of factors differs from the core order, or if any
    /// factor's column count does not match the corresponding core dimension.
    pub fn new(core: DenseTensor, factors: Vec<Matrix>) -> Self {
        assert_eq!(
            core.ndims(),
            factors.len(),
            "TuckerTensor: need one factor matrix per core mode"
        );
        for (n, f) in factors.iter().enumerate() {
            assert_eq!(
                f.cols(),
                core.dim(n),
                "TuckerTensor: factor {n} has {} columns but core mode {n} has size {}",
                f.cols(),
                core.dim(n)
            );
        }
        TuckerTensor { core, factors }
    }

    /// Number of modes.
    pub fn ndims(&self) -> usize {
        self.core.ndims()
    }

    /// The reduced dimensions `R_1, …, R_N` (the core's shape).
    pub fn ranks(&self) -> Vec<usize> {
        self.core.dims().to_vec()
    }

    /// The original (reconstructed) dimensions `I_1, …, I_N`.
    pub fn original_dims(&self) -> Vec<usize> {
        self.factors.iter().map(|f| f.rows()).collect()
    }

    /// Number of stored values: `∏ R_n + Σ I_n·R_n` (core plus factors), the
    /// denominator of the paper's compression-ratio formula (Sec. VII-B).
    pub fn storage(&self) -> usize {
        let core: usize = self.core.len();
        let factors: usize = self.factors.iter().map(|f| f.rows() * f.cols()).sum();
        core + factors
    }

    /// Compression ratio `C = ∏ I_n / (∏ R_n + Σ I_n·R_n)` relative to the
    /// given original dimensions.
    pub fn compression_ratio(&self, original_dims: &[usize]) -> f64 {
        assert_eq!(original_dims.len(), self.ndims());
        let full: f64 = original_dims.iter().map(|&d| d as f64).product();
        full / self.storage() as f64
    }

    /// Reconstructs the full tensor `X̃ = G × {U⁽ⁿ⁾}` (eq. (1) of the paper).
    pub fn reconstruct(&self) -> DenseTensor {
        self.reconstruct_ctx(tucker_exec::ExecContext::global())
    }

    /// [`TuckerTensor::reconstruct`] on an explicit execution context.
    pub fn reconstruct_ctx(&self, ctx: &tucker_exec::ExecContext) -> DenseTensor {
        let refs: Vec<&Matrix> = self.factors.iter().collect();
        tucker_tensor::ttm_chain_ctx(ctx, &self.core, &refs, TtmTranspose::NoTranspose)
    }

    /// The norm of the core tensor, `‖G‖`. For factors with orthonormal columns
    /// this equals the norm of the reconstruction, which is how HOOI tracks the
    /// model fit (Alg. 2 line 10).
    pub fn core_norm(&self) -> f64 {
        self.core.norm()
    }

    /// Checks that every factor has (approximately) orthonormal columns.
    pub fn factors_orthonormal(&self, tol: f64) -> bool {
        self.factors.iter().all(|f| f.has_orthonormal_columns(tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tucker() -> TuckerTensor {
        // Core 2x2, factors 4x2 and 3x2 (orthonormal columns from identity blocks).
        let core = DenseTensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let u0 = Matrix::from_fn(4, 2, |i, j| if i == j { 1.0 } else { 0.0 });
        let u1 = Matrix::from_fn(3, 2, |i, j| if i == j { 1.0 } else { 0.0 });
        TuckerTensor::new(core, vec![u0, u1])
    }

    #[test]
    fn shapes_and_storage() {
        let t = small_tucker();
        assert_eq!(t.ranks(), vec![2, 2]);
        assert_eq!(t.original_dims(), vec![4, 3]);
        assert_eq!(t.storage(), 4 + 8 + 6);
        assert_eq!(t.ndims(), 2);
    }

    #[test]
    fn compression_ratio_formula() {
        let t = small_tucker();
        let ratio = t.compression_ratio(&[4, 3]);
        assert!((ratio - 12.0 / 18.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_embeds_core() {
        let t = small_tucker();
        let x = t.reconstruct();
        assert_eq!(x.dims(), &[4, 3]);
        // With identity-block factors, the top-left 2x2 of X is the core.
        assert_eq!(x.get(&[0, 0]), t.core.get(&[0, 0]));
        assert_eq!(x.get(&[1, 1]), t.core.get(&[1, 1]));
        assert_eq!(x.get(&[3, 2]), 0.0);
    }

    #[test]
    fn core_norm_equals_reconstruction_norm_for_orthonormal_factors() {
        let t = small_tucker();
        let x = t.reconstruct();
        assert!((t.core_norm() - x.norm()).abs() < 1e-12);
        assert!(t.factors_orthonormal(1e-12));
    }

    #[test]
    #[should_panic]
    fn mismatched_factor_cols_panics() {
        let core = DenseTensor::zeros(&[2, 2]);
        let u0 = Matrix::zeros(4, 3); // wrong: 3 cols vs core dim 2
        let u1 = Matrix::zeros(3, 2);
        TuckerTensor::new(core, vec![u0, u1]);
    }

    #[test]
    #[should_panic]
    fn wrong_factor_count_panics() {
        let core = DenseTensor::zeros(&[2, 2]);
        TuckerTensor::new(core, vec![Matrix::zeros(4, 2)]);
    }
}
