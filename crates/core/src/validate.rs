//! Input validation and the typed errors of the fallible (`try_*`) API.
//!
//! Every `try_*` entry point of this crate — [`try_st_hosvd`],
//! [`try_hooi`], [`try_st_hosvd_streaming`], [`try_dist_st_hosvd`] — runs
//! the validators below *before* touching a kernel, so malformed input
//! (an empty shape, a zero-length mode, fixed ranks exceeding the mode
//! dimensions, a mode order that is not a permutation) surfaces as a
//! [`CoreError`] instead of a panic deep inside a GEMM. The historical
//! panicking names (`st_hosvd`, `hooi`, …) are thin wrappers over the
//! `try_*` forms that panic with the same diagnostic, so the two surfaces
//! can never drift apart.
//!
//! This module is covered by the CI panic-grep gate: no `panic!`, `unwrap`,
//! `expect`, or `assert` may appear here — every failure is a returned value.
//!
//! [`try_st_hosvd`]: crate::sthosvd::try_st_hosvd
//! [`try_hooi`]: crate::hooi::try_hooi
//! [`try_st_hosvd_streaming`]: crate::streaming::try_st_hosvd_streaming
//! [`try_dist_st_hosvd`]: crate::dist::try_dist_st_hosvd

use crate::ordering::ModeOrder;
use crate::rank::RankSelection;
use std::fmt;

/// A structurally invalid tensor shape or mode ordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// The tensor has no modes at all (`dims == []`).
    EmptyShape,
    /// One of the modes has extent zero.
    ZeroDim {
        /// The offending mode.
        mode: usize,
    },
    /// The operation needs more modes than the tensor has (e.g. the
    /// streaming driver needs at least two).
    TooFewModes {
        /// Minimum number of modes required.
        need: usize,
        /// Number of modes of the input.
        got: usize,
    },
    /// A custom mode order that is not a permutation of `0..ndims`.
    InvalidModeOrder {
        /// The offending order, as given.
        order: Vec<usize>,
        /// Number of modes of the input.
        ndims: usize,
    },
    /// A streaming run whose resolved mode order does not process the
    /// streaming (last) mode last — its Gram couples every pair of slabs,
    /// so it can only be handled once the other modes shrank the tensor
    /// into memory.
    StreamingOrderNotLast {
        /// The resolved processing order.
        order: Vec<usize>,
        /// The streaming mode (always `ndims - 1`).
        last: usize,
    },
    /// A processor grid whose order disagrees with the tensor's.
    GridArity {
        /// Number of modes of the grid.
        grid: usize,
        /// Number of modes of the tensor.
        tensor: usize,
    },
    /// A processor grid with more processes than elements along a mode.
    GridExceedsDim {
        /// The offending mode.
        mode: usize,
        /// Grid extent in that mode.
        procs: usize,
        /// Tensor extent in that mode.
        dim: usize,
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::EmptyShape => write!(f, "tensor shape is empty (0 modes)"),
            ShapeError::ZeroDim { mode } => write!(f, "mode {mode} has extent 0"),
            ShapeError::TooFewModes { need, got } => {
                write!(f, "need at least {need} modes, got {got}")
            }
            ShapeError::InvalidModeOrder { order, ndims } => {
                write!(f, "mode order {order:?} is not a permutation of 0..{ndims}")
            }
            ShapeError::StreamingOrderNotLast { order, last } => write!(
                f,
                "streaming requires the last mode ({last}) to be processed last, \
                 but the resolved order is {order:?}"
            ),
            ShapeError::GridArity { grid, tensor } => {
                write!(f, "processor grid has {grid} modes, tensor has {tensor}")
            }
            ShapeError::GridExceedsDim { mode, procs, dim } => write!(
                f,
                "processor grid has {procs} processes along mode {mode}, \
                 but the tensor extent there is only {dim}"
            ),
        }
    }
}

impl std::error::Error for ShapeError {}

/// An invalid rank selection or tolerance.
#[derive(Debug, Clone, PartialEq)]
pub enum RankError {
    /// A per-mode rank (or cap) list whose length disagrees with the number
    /// of tensor modes.
    Arity {
        /// Number of modes of the input.
        expected: usize,
        /// Number of entries in the rank list.
        got: usize,
    },
    /// A requested rank of zero.
    ZeroRank {
        /// The offending mode.
        mode: usize,
    },
    /// A fixed rank larger than the mode's extent — there are not enough
    /// eigenvectors to fill the factor.
    ExceedsDim {
        /// The offending mode.
        mode: usize,
        /// The requested rank.
        rank: usize,
        /// The mode's extent.
        dim: usize,
    },
    /// A tolerance that is negative, NaN, or infinite.
    BadTolerance {
        /// The offending value.
        eps: f64,
    },
}

impl fmt::Display for RankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankError::Arity { expected, got } => {
                write!(
                    f,
                    "rank list has {got} entries for a {expected}-mode tensor"
                )
            }
            RankError::ZeroRank { mode } => write!(f, "requested rank 0 in mode {mode}"),
            RankError::ExceedsDim { mode, rank, dim } => write!(
                f,
                "requested rank {rank} exceeds the extent {dim} of mode {mode}"
            ),
            RankError::BadTolerance { eps } => {
                write!(f, "tolerance {eps} is not a finite non-negative number")
            }
        }
    }
}

impl std::error::Error for RankError {}

/// Why a `try_*` decomposition entry point rejected its input.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The tensor shape or mode ordering is invalid.
    Shape(ShapeError),
    /// The rank selection or tolerance is invalid.
    Rank(RankError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Shape(e) => write!(f, "{e}"),
            CoreError::Rank(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Shape(e) => Some(e),
            CoreError::Rank(e) => Some(e),
        }
    }
}

impl From<ShapeError> for CoreError {
    fn from(e: ShapeError) -> Self {
        CoreError::Shape(e)
    }
}

impl From<RankError> for CoreError {
    fn from(e: RankError) -> Self {
        CoreError::Rank(e)
    }
}

/// Validates that `dims` names a non-degenerate tensor: at least one mode,
/// every mode of positive extent.
pub fn validate_shape(dims: &[usize]) -> Result<(), ShapeError> {
    if dims.is_empty() {
        return Err(ShapeError::EmptyShape);
    }
    for (mode, &d) in dims.iter().enumerate() {
        if d == 0 {
            return Err(ShapeError::ZeroDim { mode });
        }
    }
    Ok(())
}

/// Validates a [`ModeOrder`] against the number of modes (a custom order
/// must be a permutation of `0..ndims`; every strategy is fine).
pub fn validate_mode_order(order: &ModeOrder, ndims: usize) -> Result<(), ShapeError> {
    if let ModeOrder::Custom(order) = order {
        let mut seen = vec![false; ndims];
        if order.len() != ndims {
            return Err(ShapeError::InvalidModeOrder {
                order: order.clone(),
                ndims,
            });
        }
        for &m in order {
            if m >= ndims || seen[m] {
                return Err(ShapeError::InvalidModeOrder {
                    order: order.clone(),
                    ndims,
                });
            }
            seen[m] = true;
        }
    }
    Ok(())
}

/// Validates a [`RankSelection`] against the tensor dims: fixed ranks must
/// name one positive rank per mode, none exceeding the mode's extent;
/// tolerances must be finite and non-negative; caps must be positive and
/// cover every mode.
pub fn validate_rank_selection(sel: &RankSelection, dims: &[usize]) -> Result<(), RankError> {
    let check_eps = |eps: f64| -> Result<(), RankError> {
        if !eps.is_finite() || eps < 0.0 {
            return Err(RankError::BadTolerance { eps });
        }
        Ok(())
    };
    match sel {
        RankSelection::Fixed(ranks) => {
            if ranks.len() != dims.len() {
                return Err(RankError::Arity {
                    expected: dims.len(),
                    got: ranks.len(),
                });
            }
            for (mode, (&r, &d)) in ranks.iter().zip(dims.iter()).enumerate() {
                if r == 0 {
                    return Err(RankError::ZeroRank { mode });
                }
                if r > d {
                    return Err(RankError::ExceedsDim {
                        mode,
                        rank: r,
                        dim: d,
                    });
                }
            }
            Ok(())
        }
        RankSelection::Tolerance(eps) => check_eps(*eps),
        RankSelection::ToleranceWithMax(eps, caps) => {
            check_eps(*eps)?;
            if caps.len() != dims.len() {
                return Err(RankError::Arity {
                    expected: dims.len(),
                    got: caps.len(),
                });
            }
            for (mode, &c) in caps.iter().enumerate() {
                if c == 0 {
                    return Err(RankError::ZeroRank { mode });
                }
            }
            Ok(())
        }
    }
}

/// Validates a processor grid against the tensor dims: matching order, and
/// no mode with more processes than elements (some ranks would own empty
/// blocks). Shared by the distributed `try_*` entry points and the
/// `tucker-api` planner, so their failure taxonomy cannot diverge.
pub fn validate_grid(dims: &[usize], grid_dims: &[usize]) -> Result<(), ShapeError> {
    if grid_dims.len() != dims.len() {
        return Err(ShapeError::GridArity {
            grid: grid_dims.len(),
            tensor: dims.len(),
        });
    }
    for (mode, (&procs, &dim)) in grid_dims.iter().zip(dims.iter()).enumerate() {
        if procs > dim {
            return Err(ShapeError::GridExceedsDim { mode, procs, dim });
        }
    }
    Ok(())
}

/// The rank hint the drivers feed to greedy mode orderings: the fixed ranks
/// when available, otherwise the dimensions themselves.
pub(crate) fn rank_hint(sel: &RankSelection, dims: &[usize]) -> Vec<usize> {
    match sel {
        RankSelection::Fixed(r) | RankSelection::ToleranceWithMax(_, r) => r.clone(),
        RankSelection::Tolerance(_) => dims.to_vec(),
    }
}

/// Shared validation of the in-memory ST-HOSVD / HOOI inputs: shape, mode
/// order, and rank selection.
pub fn validate_sthosvd_inputs(
    dims: &[usize],
    opts: &crate::sthosvd::SthosvdOptions,
) -> Result<(), CoreError> {
    validate_shape(dims)?;
    validate_mode_order(&opts.order, dims.len())?;
    validate_rank_selection(&opts.rank, dims)?;
    Ok(())
}

/// Validation of the streaming ST-HOSVD inputs: everything
/// [`validate_sthosvd_inputs`] checks, plus at least two modes and a
/// resolved processing order that ends with the streaming (last) mode.
pub fn validate_streaming_inputs(
    dims: &[usize],
    opts: &crate::sthosvd::SthosvdOptions,
) -> Result<(), CoreError> {
    validate_sthosvd_inputs(dims, opts)?;
    if dims.len() < 2 {
        return Err(ShapeError::TooFewModes {
            need: 2,
            got: dims.len(),
        }
        .into());
    }
    let last = dims.len() - 1;
    let order = opts.order.resolve(dims, &rank_hint(&opts.rank, dims));
    if order.last() != Some(&last) {
        return Err(ShapeError::StreamingOrderNotLast { order, last }.into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sthosvd::SthosvdOptions;

    #[test]
    fn shape_validation() {
        assert_eq!(validate_shape(&[]), Err(ShapeError::EmptyShape));
        assert_eq!(
            validate_shape(&[3, 0, 2]),
            Err(ShapeError::ZeroDim { mode: 1 })
        );
        assert!(validate_shape(&[3, 2]).is_ok());
    }

    #[test]
    fn mode_order_validation() {
        assert!(validate_mode_order(&ModeOrder::Natural, 3).is_ok());
        assert!(validate_mode_order(&ModeOrder::Custom(vec![2, 0, 1]), 3).is_ok());
        for bad in [vec![0, 0, 1], vec![0, 1, 3], vec![0, 1]] {
            assert!(matches!(
                validate_mode_order(&ModeOrder::Custom(bad), 3),
                Err(ShapeError::InvalidModeOrder { .. })
            ));
        }
    }

    #[test]
    fn rank_validation() {
        let dims = [4usize, 5];
        assert!(validate_rank_selection(&RankSelection::Fixed(vec![4, 5]), &dims).is_ok());
        assert_eq!(
            validate_rank_selection(&RankSelection::Fixed(vec![4]), &dims),
            Err(RankError::Arity {
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            validate_rank_selection(&RankSelection::Fixed(vec![4, 0]), &dims),
            Err(RankError::ZeroRank { mode: 1 })
        );
        assert_eq!(
            validate_rank_selection(&RankSelection::Fixed(vec![5, 5]), &dims),
            Err(RankError::ExceedsDim {
                mode: 0,
                rank: 5,
                dim: 4
            })
        );
        assert!(validate_rank_selection(&RankSelection::Tolerance(1e-3), &dims).is_ok());
        for bad in [-1e-3, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                validate_rank_selection(&RankSelection::Tolerance(bad), &dims),
                Err(RankError::BadTolerance { .. })
            ));
        }
        assert!(
            validate_rank_selection(&RankSelection::ToleranceWithMax(1e-3, vec![2, 9]), &dims)
                .is_ok(),
            "caps above the dims are caps, not requests — allowed"
        );
    }

    #[test]
    fn streaming_validation() {
        let opts = SthosvdOptions::with_tolerance(0.1);
        assert!(validate_streaming_inputs(&[4, 5, 6], &opts).is_ok());
        assert!(matches!(
            validate_streaming_inputs(&[4], &opts),
            Err(CoreError::Shape(ShapeError::TooFewModes { .. }))
        ));
        let bad = SthosvdOptions::with_tolerance(0.1).order(ModeOrder::Custom(vec![2, 1, 0]));
        assert!(matches!(
            validate_streaming_inputs(&[4, 5, 6], &bad),
            Err(CoreError::Shape(ShapeError::StreamingOrderNotLast { .. }))
        ));
        // SmallestFirst on a shape whose last mode is smallest: rejected.
        let sf = SthosvdOptions::with_tolerance(0.1).order(ModeOrder::SmallestFirst);
        assert!(matches!(
            validate_streaming_inputs(&[4, 5, 3], &sf),
            Err(CoreError::Shape(ShapeError::StreamingOrderNotLast { .. }))
        ));
        assert!(validate_streaming_inputs(&[4, 3, 5], &sf).is_ok());
    }

    #[test]
    fn errors_display_and_chain() {
        let e = CoreError::from(RankError::ExceedsDim {
            mode: 2,
            rank: 9,
            dim: 4,
        });
        assert!(format!("{e}").contains("mode 2"));
        assert!(std::error::Error::source(&e).is_some());
        let s = CoreError::from(ShapeError::EmptyShape);
        assert!(format!("{s}").contains("0 modes"));
    }
}
