//! `tucker-core` — the Tucker tensor decomposition for compression of
//! large-scale scientific data, sequential and distributed.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Austin, Ballard & Kolda, *Parallel Tensor Compression for Large-Scale
//! Scientific Data*, IPDPS 2016):
//!
//! * **Sequential algorithms** — [`sthosvd`] (Alg. 1), [`hooi`](mod@hooi) (Alg. 2),
//!   [`thosvd`] (the classical truncated HOSVD baseline), and
//!   [`reconstruct`] (full and partial reconstruction, eq. (1)).
//! * **Distributed algorithms** — the [`dist`] module provides the
//!   block-distributed tensor (Sec. IV), the parallel TTM / Gram /
//!   eigenvector kernels (Algs. 3–5), and distributed ST-HOSVD / HOOI built
//!   on top of the simulated message-passing runtime in `tucker-distmem`.
//! * **Compression machinery** — [`rank`] (ε-driven rank selection),
//!   [`error`] (mode-wise error analysis, the error bound eq. (3), and
//!   compression ratios), and [`ordering`] (mode-ordering strategies,
//!   Sec. VIII-C).
//!
//! # Quick start
//!
//! ```
//! use tucker_core::prelude::*;
//! use tucker_tensor::DenseTensor;
//!
//! // A small synthetic 3-way tensor.
//! let x = DenseTensor::from_fn(&[20, 18, 16], |idx| {
//!     let (i, j, k) = (idx[0] as f64, idx[1] as f64, idx[2] as f64);
//!     (0.05 * i).sin() * (0.07 * j).cos() + 0.01 * k
//! });
//!
//! // Compress to a relative error of 1e-4.
//! let opts = SthosvdOptions::with_tolerance(1e-4);
//! let result = st_hosvd(&x, &opts);
//!
//! // Reconstruct and check the error.
//! let x_hat = result.tucker.reconstruct();
//! let err = tucker_tensor::normalized_rms_error(&x, &x_hat);
//! assert!(err <= 1e-4);
//! assert!(result.tucker.compression_ratio(x.dims()) > 1.0);
//! ```

pub mod dist;
pub mod error;
pub mod hooi;
pub mod ordering;
pub mod rank;
pub mod reconstruct;
pub mod sthosvd;
pub mod streaming;
pub mod thosvd;
pub mod tucker;
pub mod validate;

pub use error::{compression_ratio, error_bound, mode_wise_error_curves, ModeErrorCurve};
pub use hooi::{hooi, hooi_ctx, try_hooi, try_hooi_ctx, HooiOptions, HooiResult};
pub use ordering::ModeOrder;
pub use rank::{select_rank_by_threshold, RankSelection};
pub use reconstruct::{
    reconstruct_element, reconstruct_full, reconstruct_full_ctx, reconstruct_subtensor,
    reconstruct_subtensor_ctx,
};
pub use sthosvd::{
    st_hosvd, st_hosvd_ctx, try_st_hosvd, try_st_hosvd_ctx, SthosvdOptions, SthosvdResult,
};
pub use streaming::{
    st_hosvd_streaming, st_hosvd_streaming_ctx, try_st_hosvd_streaming, try_st_hosvd_streaming_ctx,
    StreamingOptions,
};
pub use thosvd::{t_hosvd, ThosvdResult};
pub use tucker::TuckerTensor;
pub use validate::{CoreError, RankError, ShapeError};

/// Convenience re-exports for downstream code and examples.
pub mod prelude {
    pub use crate::dist::{DistTensor, DistTucker};
    pub use crate::error::{compression_ratio, error_bound, mode_wise_error_curves};
    pub use crate::hooi::{hooi, hooi_ctx, try_hooi, try_hooi_ctx, HooiOptions, HooiResult};
    pub use crate::ordering::ModeOrder;
    pub use crate::rank::RankSelection;
    pub use crate::reconstruct::{reconstruct_element, reconstruct_full, reconstruct_subtensor};
    pub use crate::sthosvd::{
        st_hosvd, st_hosvd_ctx, try_st_hosvd, try_st_hosvd_ctx, SthosvdOptions, SthosvdResult,
    };
    pub use crate::streaming::{
        st_hosvd_streaming, st_hosvd_streaming_ctx, try_st_hosvd_streaming,
        try_st_hosvd_streaming_ctx, StreamingOptions,
    };
    pub use crate::thosvd::t_hosvd;
    pub use crate::tucker::TuckerTensor;
    pub use crate::validate::{CoreError, RankError, ShapeError};
    pub use tucker_exec::ExecContext;
}
