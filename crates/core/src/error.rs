//! Error analysis and compression metrics (Sec. VII-B of the paper).
//!
//! The compressibility of a dataset is governed by the decay of the mode-wise
//! Gram eigenvalues `λ⁽ⁿ⁾ᵢ` of the original tensor. This module computes:
//!
//! * **mode-wise error curves** (Fig. 6): for each mode `n` and candidate rank
//!   `R`, the normalized tail `sqrt(Σ_{i>R} λ⁽ⁿ⁾ᵢ)/‖X‖`;
//! * the **a-priori error bound** of eq. (3);
//! * the **compression ratio** formula `C = ∏I_n / (∏R_n + ΣI_n·R_n)`;
//! * the rank vector implied by a tolerance ε, read off the error curves —
//!   exactly how the paper annotates Fig. 6 with the `ε/√N` threshold line.

use serde::{Deserialize, Serialize};
use tucker_linalg::eig::sym_eig_desc;
use tucker_tensor::{gram, DenseTensor};

/// The mode-wise error curve of one tensor mode (one line of Fig. 6).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModeErrorCurve {
    /// The mode this curve describes.
    pub mode: usize,
    /// Descending eigenvalues of the Gram matrix `X(n)·X(n)ᵀ`.
    pub eigenvalues: Vec<f64>,
    /// `tail_error[r] = sqrt(Σ_{i ≥ r} λᵢ)/‖X‖` for `r = 0 … I_n` — the
    /// normalized mode-wise RMS error if the mode were truncated to rank `r`.
    pub tail_error: Vec<f64>,
}

impl ModeErrorCurve {
    /// The smallest rank whose tail error is at most `threshold` (the
    /// intersection of the curve with the dotted `ε/√N` line in Fig. 6).
    pub fn rank_for_threshold(&self, threshold: f64) -> usize {
        for (r, &err) in self.tail_error.iter().enumerate() {
            if err <= threshold {
                return r.max(1);
            }
        }
        self.eigenvalues.len()
    }
}

/// Computes the mode-wise error curves of a tensor (the data behind Fig. 6).
pub fn mode_wise_error_curves(x: &DenseTensor) -> Vec<ModeErrorCurve> {
    let norm = x.norm();
    (0..x.ndims())
        .map(|n| {
            let s = gram(x, n);
            let eig = sym_eig_desc(&s);
            let eigenvalues: Vec<f64> = eig.values.iter().map(|&v| v.max(0.0)).collect();
            let tail_error = tail_errors(&eigenvalues, norm);
            ModeErrorCurve {
                mode: n,
                eigenvalues,
                tail_error,
            }
        })
        .collect()
}

/// Converts descending eigenvalues into normalized tail errors
/// `tail[r] = sqrt(Σ_{i ≥ r} λᵢ)/‖X‖` for `r = 0 … len`.
pub fn tail_errors(eigenvalues_desc: &[f64], norm_x: f64) -> Vec<f64> {
    let n = eigenvalues_desc.len();
    let mut tails = vec![0.0f64; n + 1];
    let mut acc = 0.0;
    for r in (0..n).rev() {
        acc += eigenvalues_desc[r].max(0.0);
        tails[r] = acc;
    }
    let denom = if norm_x > 0.0 { norm_x } else { 1.0 };
    tails.iter().map(|&t| t.sqrt() / denom).collect()
}

/// The a-priori bound of eq. (3): given per-mode eigenvalues and chosen ranks,
/// `‖X − X̃‖² ≤ Σ_n Σ_{i > R_n} λ⁽ⁿ⁾ᵢ`; returns the normalized bound
/// `sqrt(Σ…)/‖X‖`.
pub fn error_bound(curves: &[ModeErrorCurve], ranks: &[usize], norm_x: f64) -> f64 {
    assert_eq!(curves.len(), ranks.len(), "error_bound: arity mismatch");
    let mut total = 0.0;
    for (curve, &r) in curves.iter().zip(ranks.iter()) {
        total += curve.eigenvalues[r.min(curve.eigenvalues.len())..]
            .iter()
            .map(|&v| v.max(0.0))
            .sum::<f64>();
    }
    if norm_x > 0.0 {
        total.sqrt() / norm_x
    } else {
        0.0
    }
}

/// Ranks implied by a relative error tolerance ε, read off the mode-wise curves
/// with the paper's per-mode threshold `ε/√N`.
pub fn ranks_for_tolerance(curves: &[ModeErrorCurve], eps: f64) -> Vec<usize> {
    let n = curves.len() as f64;
    let threshold = eps / n.sqrt();
    curves
        .iter()
        .map(|c| c.rank_for_threshold(threshold))
        .collect()
}

/// The compression ratio `C = ∏ I_n / (∏ R_n + Σ I_n·R_n)` (Sec. VII-B).
pub fn compression_ratio(original_dims: &[usize], ranks: &[usize]) -> f64 {
    assert_eq!(original_dims.len(), ranks.len());
    let full: f64 = original_dims.iter().map(|&d| d as f64).product();
    let core: f64 = ranks.iter().map(|&r| r as f64).product();
    let factors: f64 = original_dims
        .iter()
        .zip(ranks.iter())
        .map(|(&d, &r)| (d * r) as f64)
        .sum();
    full / (core + factors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sthosvd::{st_hosvd, SthosvdOptions};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tucker_tensor::normalized_rms_error;

    fn random_tensor(rng: &mut StdRng, dims: &[usize]) -> DenseTensor {
        DenseTensor::from_fn(dims, |_| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn tail_errors_are_decreasing_and_start_at_one() {
        let mut rng = StdRng::seed_from_u64(110);
        let x = random_tensor(&mut rng, &[8, 7, 6]);
        for curve in mode_wise_error_curves(&x) {
            // tail[0] = ‖X‖/‖X‖ = 1 (all energy discarded).
            assert!((curve.tail_error[0] - 1.0).abs() < 1e-8);
            // tail[I_n] = 0 (nothing discarded).
            assert!(curve.tail_error.last().unwrap().abs() < 1e-8);
            for w in curve.tail_error.windows(2) {
                assert!(w[1] <= w[0] + 1e-12);
            }
        }
    }

    #[test]
    fn rank_for_threshold_crossing() {
        let curve = ModeErrorCurve {
            mode: 0,
            eigenvalues: vec![9.0, 0.9, 0.09, 0.01],
            tail_error: tail_errors(&[9.0, 0.9, 0.09, 0.01], 10.0f64.sqrt()),
        };
        // tail[0]=1.0, tail[1]≈0.316, tail[2]=0.1, tail[3]≈0.0316, tail[4]=0.
        assert_eq!(curve.rank_for_threshold(1.1), 1);
        assert_eq!(curve.rank_for_threshold(0.05), 3);
        assert_eq!(curve.rank_for_threshold(0.15), 2);
        assert_eq!(curve.rank_for_threshold(1e-9), 4);
    }

    #[test]
    fn error_bound_dominates_actual_error() {
        let mut rng = StdRng::seed_from_u64(111);
        let x = random_tensor(&mut rng, &[9, 8, 7]);
        let curves = mode_wise_error_curves(&x);
        let ranks = vec![5, 4, 4];
        let bound = error_bound(&curves, &ranks, x.norm());
        let st = st_hosvd(&x, &SthosvdOptions::with_ranks(ranks));
        let err = normalized_rms_error(&x, &st.tucker.reconstruct());
        assert!(err <= bound + 1e-10, "error {err} exceeds bound {bound}");
    }

    #[test]
    fn ranks_for_tolerance_match_sthosvd_behaviour() {
        // The ranks read off the Fig. 6 curves are an upper bound on what
        // ST-HOSVD (which benefits from sequential truncation) selects.
        let mut rng = StdRng::seed_from_u64(112);
        let x = random_tensor(&mut rng, &[10, 9, 8]);
        let curves = mode_wise_error_curves(&x);
        let eps = 0.3;
        let curve_ranks = ranks_for_tolerance(&curves, eps);
        let st = st_hosvd(&x, &SthosvdOptions::with_tolerance(eps));
        for (n, (&cr, &sr)) in curve_ranks.iter().zip(st.ranks.iter()).enumerate() {
            assert!(
                sr <= cr + 1,
                "mode {n}: ST-HOSVD rank {sr} unexpectedly larger than curve rank {cr}"
            );
        }
    }

    #[test]
    fn compression_ratio_matches_paper_formula() {
        // HCCI row of Tab. II: dims 672x672x33x627, ranks (297,279,29,153) → C ≈ 25.
        let c = compression_ratio(&[672, 672, 33, 627], &[297, 279, 29, 153]);
        assert!((c - 25.0).abs() < 1.0, "expected ~25, got {c}");
        // SP row: dims 500x500x500x11x50, ranks (81,129,127,7,32) → C ≈ 231.
        let c = compression_ratio(&[500, 500, 500, 11, 50], &[81, 129, 127, 7, 32]);
        assert!((c - 231.0).abs() < 3.0, "expected ~231, got {c}");
    }

    #[test]
    fn compression_ratio_of_no_compression_is_below_one() {
        let c = compression_ratio(&[10, 10], &[10, 10]);
        assert!(c < 1.0);
    }

    #[test]
    fn curves_cover_every_mode() {
        let mut rng = StdRng::seed_from_u64(113);
        let x = random_tensor(&mut rng, &[5, 4, 3, 2]);
        let curves = mode_wise_error_curves(&x);
        assert_eq!(curves.len(), 4);
        for (n, c) in curves.iter().enumerate() {
            assert_eq!(c.mode, n);
            assert_eq!(c.eigenvalues.len(), x.dim(n));
            assert_eq!(c.tail_error.len(), x.dim(n) + 1);
        }
    }
}
