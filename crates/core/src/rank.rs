//! Rank selection for the Tucker decomposition.
//!
//! The paper drives compression by a user-specified relative error tolerance ε:
//! Alg. 1 line 5 picks, in each mode, the smallest `R_n` such that the sum of
//! the discarded Gram eigenvalues is at most `ε²‖X‖²/N`. Fixed ranks and
//! maximum-rank caps are also supported (the performance experiments of
//! Sec. VIII use fixed ranks).

use serde::{Deserialize, Serialize};

/// How the reduced dimensions `R_n` are chosen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RankSelection {
    /// Use exactly these ranks (clamped to the mode sizes).
    Fixed(Vec<usize>),
    /// Choose each `R_n` from the relative error tolerance ε via the
    /// eigenvalue-tail rule of Alg. 1 line 5.
    Tolerance(f64),
    /// Tolerance-driven selection, but never exceed the given per-mode caps.
    ToleranceWithMax(f64, Vec<usize>),
}

impl RankSelection {
    /// The error tolerance carried by this selection (0 for fixed ranks).
    pub fn tolerance(&self) -> f64 {
        match self {
            RankSelection::Fixed(_) => 0.0,
            RankSelection::Tolerance(eps) | RankSelection::ToleranceWithMax(eps, _) => *eps,
        }
    }

    /// Chooses the rank for mode `n` given the descending eigenvalues of the
    /// current Gram matrix, the squared norm of the **original** tensor, and
    /// the number of modes `n_modes`.
    pub fn select(
        &self,
        mode: usize,
        eigenvalues_desc: &[f64],
        norm_x_sq: f64,
        n_modes: usize,
    ) -> usize {
        match self {
            RankSelection::Fixed(ranks) => ranks[mode].min(eigenvalues_desc.len()).max(1),
            RankSelection::Tolerance(eps) => {
                let threshold = eps * eps * norm_x_sq / n_modes as f64;
                select_rank_by_threshold(eigenvalues_desc, threshold)
            }
            RankSelection::ToleranceWithMax(eps, caps) => {
                let threshold = eps * eps * norm_x_sq / n_modes as f64;
                select_rank_by_threshold(eigenvalues_desc, threshold)
                    .min(caps[mode])
                    .max(1)
            }
        }
    }
}

/// Returns the smallest `R` such that the sum of `eigenvalues_desc[R..]` is at
/// most `threshold` (Alg. 1 line 5). Eigenvalues must be sorted in descending
/// order; tiny negative values (numerical noise from the eigensolver) are
/// clamped to zero. Always returns at least 1.
pub fn select_rank_by_threshold(eigenvalues_desc: &[f64], threshold: f64) -> usize {
    let n = eigenvalues_desc.len();
    if n == 0 {
        return 1;
    }
    // Cumulative tail sums from the back.
    let mut tail = 0.0f64;
    let mut rank = n;
    // Walk from the smallest eigenvalue: while dropping the next one keeps the
    // discarded sum within the threshold, reduce the rank.
    for r in (1..=n).rev() {
        let lambda = eigenvalues_desc[r - 1].max(0.0);
        if tail + lambda <= threshold && r > 1 {
            tail += lambda;
            rank = r - 1;
        } else {
            break;
        }
    }
    rank.max(1)
}

/// The sum of the discarded eigenvalues for a chosen rank (used to assemble the
/// a-priori error bound of eq. (3)).
pub fn discarded_tail(eigenvalues_desc: &[f64], rank: usize) -> f64 {
    eigenvalues_desc[rank.min(eigenvalues_desc.len())..]
        .iter()
        .map(|&v| v.max(0.0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_everything_when_threshold_zero() {
        let ev = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(select_rank_by_threshold(&ev, 0.0), 4);
    }

    #[test]
    fn drops_small_tail() {
        let ev = [100.0, 10.0, 0.5, 0.4];
        // tail {0.4} = 0.4 <= 1.0, tail {0.5,0.4} = 0.9 <= 1.0, adding 10 exceeds.
        assert_eq!(select_rank_by_threshold(&ev, 1.0), 2);
    }

    #[test]
    fn boundary_is_inclusive() {
        let ev = [10.0, 1.0, 1.0];
        assert_eq!(select_rank_by_threshold(&ev, 2.0), 1);
        assert_eq!(select_rank_by_threshold(&ev, 1.9999), 2);
    }

    #[test]
    fn never_returns_zero() {
        let ev = [1e-20, 1e-21];
        assert_eq!(select_rank_by_threshold(&ev, 1.0), 1);
        assert_eq!(select_rank_by_threshold(&[], 1.0), 1);
    }

    #[test]
    fn negative_noise_is_clamped() {
        let ev = [5.0, 1.0, -1e-14];
        assert_eq!(select_rank_by_threshold(&ev, 0.5), 2);
    }

    #[test]
    fn fixed_selection_clamps_to_available() {
        let sel = RankSelection::Fixed(vec![10, 2]);
        assert_eq!(sel.select(0, &[1.0, 1.0, 1.0], 3.0, 2), 3);
        assert_eq!(sel.select(1, &[1.0, 1.0, 1.0], 3.0, 2), 2);
    }

    #[test]
    fn tolerance_selection_uses_norm_and_mode_count() {
        // eps^2 * ||X||^2 / N = 0.01 * 100 / 2 = 0.5
        let sel = RankSelection::Tolerance(0.1);
        let ev = [90.0, 9.0, 0.6, 0.4];
        assert_eq!(sel.select(0, &ev, 100.0, 2), 3);
        // With a looser tolerance the threshold is 50: drop 0.4+0.6+9.0 = 10 <= 50.
        let sel2 = RankSelection::Tolerance(1.0);
        assert_eq!(sel2.select(0, &ev, 100.0, 2), 1);
    }

    #[test]
    fn tolerance_with_max_caps_rank() {
        let sel = RankSelection::ToleranceWithMax(1e-12, vec![2]);
        let ev = [10.0, 5.0, 3.0, 2.0];
        assert_eq!(sel.select(0, &ev, 20.0, 1), 2);
    }

    #[test]
    fn discarded_tail_sums_tail() {
        let ev = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(discarded_tail(&ev, 2), 3.0);
        assert_eq!(discarded_tail(&ev, 4), 0.0);
        assert_eq!(discarded_tail(&ev, 10), 0.0);
    }

    #[test]
    fn tolerance_accessor() {
        assert_eq!(RankSelection::Fixed(vec![1]).tolerance(), 0.0);
        assert_eq!(RankSelection::Tolerance(1e-3).tolerance(), 1e-3);
    }
}
