//! Distributed-memory Tucker decomposition (Secs. IV–VI of the paper).
//!
//! The data object is a [`DistTensor`]: a dense tensor block-distributed over
//! the N-way processor grid of the communicator, each rank owning the
//! contiguous block of every mode given by [`ProcGrid::local_range`]. On top
//! of it this module implements the paper's parallel kernels and drivers:
//!
//! * [`parallel_ttm`] — Alg. 3: local TTM against the owned slice of the
//!   matrix, sum-reduction across the mode-`n` processor column, then
//!   re-blocking of the shrunken mode.
//! * [`parallel_gram`] — Alg. 4: a ring (shifted sendrecv) over the mode-`n`
//!   processor column to build this rank's row block of `S = Y(n)·Y(n)ᵀ`,
//!   followed by an all-reduce across the mode-`n`  processor row.
//! * [`parallel_evecs`] — Alg. 5: the Gram row blocks are all-gathered within
//!   the processor column and the (small) `I_n × I_n` eigenproblem is solved
//!   redundantly on every rank, which keeps the factor matrices replicated.
//! * [`dist_st_hosvd`] / [`dist_hooi`] — the distributed ST-HOSVD (Alg. 1) and
//!   HOOI (Alg. 2) drivers, mirroring their sequential counterparts in
//!   [`crate::sthosvd`] / [`crate::hooi`](mod@crate::hooi) step for step. On a single rank they
//!   perform bit-identical arithmetic to the sequential code.
//! * [`dist_reconstruct`] — distributed reconstruction `X̂ = G ×₁ U⁽¹⁾ ⋯ ×_N U⁽ᴺ⁾`.
//!
//! Factor matrices are small (`I_n × R_n`) and kept **replicated** on every
//! rank, exactly as the paper stores them; only the tensor (and the core) is
//! distributed.

use std::time::Instant;

use crate::hooi::HooiOptions;
use crate::rank::discarded_tail;
use crate::tucker::TuckerTensor;
use crate::validate::{self, CoreError};
use tucker_distmem::collectives::{all_gather, all_reduce, reduce_scatter_blocks};
use tucker_distmem::{Communicator, ProcGrid, SubCommunicator};
use tucker_exec::ExecContext;
use tucker_linalg::eig::{sym_eig_desc, SymEig};
use tucker_linalg::gemm::{gemm_ctx, Transpose};
use tucker_linalg::Matrix;
use tucker_tensor::layout::Unfolding;
use tucker_tensor::slice::insert_subtensor;
use tucker_tensor::{
    extract_subtensor, gram_ctx, ttm_ctx, DenseTensor, SubtensorSpec, TtmTranspose,
};

/// The execution context a simulated rank uses when the caller did not pass
/// one: an even share of the global pool, `max(1, threads / ranks)` — the
/// hybrid "ranks × threads" model (MPI + OpenMP in TuckerMPI terms). All
/// ranks scatter onto the **same** persistent pool, so total parallelism
/// stays bounded by the machine rather than `ranks × threads`.
pub fn hybrid_ctx(comm: &Communicator) -> ExecContext {
    let global = ExecContext::global();
    global.with_budget((global.threads() / comm.size().max(1)).max(1))
}

use crate::sthosvd::SthosvdOptions;

/// A dense tensor block-distributed over the communicator's processor grid.
///
/// Every rank owns the sub-block `ranges[0] × … × ranges[N-1]` (per-mode
/// `(offset, len)` in global coordinates) of a tensor with dimensions
/// `global_dims`. Blocks tile the global tensor exactly.
#[derive(Debug, Clone)]
pub struct DistTensor {
    global_dims: Vec<usize>,
    ranges: Vec<(usize, usize)>,
    local: DenseTensor,
}

impl DistTensor {
    /// Distributes a globally replicated tensor: every rank extracts its own
    /// block. This is how the test harnesses and examples stage data; a real
    /// deployment would read each block from parallel storage instead.
    pub fn from_global(comm: &Communicator, global: &DenseTensor) -> DistTensor {
        let grid = comm.grid();
        assert_eq!(
            global.ndims(),
            grid.ndims(),
            "DistTensor::from_global: tensor order {} does not match grid order {}",
            global.ndims(),
            grid.ndims()
        );
        let ranges = Self::rank_ranges(grid, comm.rank(), global.dims());
        let local = extract_subtensor(global, &spec_from_ranges(&ranges));
        DistTensor {
            global_dims: global.dims().to_vec(),
            ranges,
            local,
        }
    }

    /// Wraps an already-extracted local block (used internally by the kernels).
    fn from_parts(
        global_dims: Vec<usize>,
        ranges: Vec<(usize, usize)>,
        local: DenseTensor,
    ) -> DistTensor {
        debug_assert_eq!(
            ranges.iter().map(|r| r.1).collect::<Vec<_>>(),
            local.dims().to_vec(),
            "DistTensor: block ranges inconsistent with local dims"
        );
        DistTensor {
            global_dims,
            ranges,
            local,
        }
    }

    fn rank_ranges(grid: &ProcGrid, rank: usize, dims: &[usize]) -> Vec<(usize, usize)> {
        (0..dims.len())
            .map(|n| grid.local_range(rank, n, dims[n]))
            .collect()
    }

    /// The global tensor dimensions.
    pub fn global_dims(&self) -> &[usize] {
        &self.global_dims
    }

    /// Per-mode `(offset, len)` of this rank's block, in global coordinates.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// This rank's local block.
    pub fn local(&self) -> &DenseTensor {
        &self.local
    }

    /// Gathers the distributed tensor onto rank 0, which returns the assembled
    /// global tensor; other ranks return `None`.
    pub fn gather_to_root(&self, comm: &Communicator) -> Option<DenseTensor> {
        if comm.size() == 1 {
            return Some(self.local.clone());
        }
        if comm.rank() == 0 {
            let mut out = DenseTensor::zeros(&self.global_dims);
            insert_subtensor(&mut out, &spec_from_ranges(&self.ranges), &self.local);
            for r in 1..comm.size() {
                let data = comm.recv(r);
                let ranges = Self::rank_ranges(comm.grid(), r, &self.global_dims);
                let ldims: Vec<usize> = ranges.iter().map(|&(_, l)| l).collect();
                let sub = DenseTensor::from_vec(&ldims, data);
                insert_subtensor(&mut out, &spec_from_ranges(&ranges), &sub);
            }
            Some(out)
        } else {
            comm.send(0, self.local.as_slice());
            None
        }
    }

    /// `‖X‖²` of the **global** tensor (an all-reduce of the local values; on a
    /// single rank this is exactly the sequential `norm_sq`).
    pub fn global_norm_sq(&self, comm: &Communicator) -> f64 {
        let group = SubCommunicator::world_group(comm);
        all_reduce(&group, &[self.local.norm_sq()])[0]
    }
}

fn spec_from_ranges(ranges: &[(usize, usize)]) -> SubtensorSpec {
    SubtensorSpec::from_ranges(ranges)
}

/// A Tucker decomposition whose core is block-distributed and whose (small)
/// factor matrices are replicated on every rank, as in the paper.
#[derive(Debug, Clone)]
pub struct DistTucker {
    /// The distributed core tensor `G`.
    pub core: DistTensor,
    /// Replicated factor matrices `U⁽ⁿ⁾` (`I_n × R_n`), indexed by mode.
    pub factors: Vec<Matrix>,
}

impl DistTucker {
    /// Gathers the core onto rank 0 and pairs it with the (already replicated)
    /// factors; rank 0 returns the sequential [`TuckerTensor`], others `None`.
    pub fn gather_to_root(&self, comm: &Communicator) -> Option<TuckerTensor> {
        self.core
            .gather_to_root(comm)
            .map(|core| TuckerTensor::new(core, self.factors.clone()))
    }

    /// The reduced dimensions `R_n`.
    pub fn ranks(&self) -> Vec<usize> {
        self.factors.iter().map(|u| u.cols()).collect()
    }
}

/// Wall-clock seconds spent in each distributed kernel, per mode — the
/// breakdown reported in the paper's Figs. 4–5 and used by the `fig9*`
/// scaling harnesses.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelTimings {
    /// Seconds in [`parallel_gram`] (Alg. 4), indexed by mode.
    pub gram: Vec<f64>,
    /// Seconds in [`parallel_evecs`] (Alg. 5), indexed by mode.
    pub evecs: Vec<f64>,
    /// Seconds in [`parallel_ttm`] (Alg. 3), indexed by mode.
    pub ttm: Vec<f64>,
    /// The per-rank thread budget the run executed with (hybrid
    /// ranks × threads accounting; 1 when no pool was used).
    pub thread_budget: usize,
}

impl KernelTimings {
    /// Zeroed timings for an `nmodes`-way decomposition.
    pub fn new(nmodes: usize) -> Self {
        KernelTimings {
            gram: vec![0.0; nmodes],
            evecs: vec![0.0; nmodes],
            ttm: vec![0.0; nmodes],
            thread_budget: 1,
        }
    }

    /// Per-kernel totals `(gram, evecs, ttm)` in seconds.
    pub fn totals(&self) -> (f64, f64, f64) {
        (
            self.gram.iter().sum(),
            self.evecs.iter().sum(),
            self.ttm.iter().sum(),
        )
    }

    /// Total seconds across all kernels and modes.
    pub fn total(&self) -> f64 {
        let (g, e, t) = self.totals();
        g + e + t
    }
}

// Kernel timings cross process boundaries when an SPMD region runs on the
// multi-process TCP backend (`tucker-net` ships each rank's closure result
// through the region result table), so they get an exact wire encoding.
impl tucker_distmem::Wire for KernelTimings {
    fn encode(&self, out: &mut Vec<u8>) {
        self.gram.encode(out);
        self.evecs.encode(out);
        self.ttm.encode(out);
        self.thread_budget.encode(out);
    }

    fn decode(r: &mut tucker_distmem::WireReader<'_>) -> Result<Self, tucker_distmem::WireError> {
        Ok(KernelTimings {
            gram: Vec::<f64>::decode(r)?,
            evecs: Vec::<f64>::decode(r)?,
            ttm: Vec::<f64>::decode(r)?,
            thread_budget: usize::decode(r)?,
        })
    }
}

/// Result of [`dist_st_hosvd`] on one rank.
#[derive(Debug, Clone)]
pub struct DistSthosvdResult {
    /// The decomposition (distributed core, replicated factors).
    pub tucker: DistTucker,
    /// The reduced dimension chosen in each mode (identical on every rank).
    pub ranks: Vec<usize>,
    /// The descending Gram eigenvalues observed per mode (identical on every
    /// rank, since the eigenproblem is solved redundantly).
    pub mode_eigenvalues: Vec<Vec<f64>>,
    /// Sum of discarded eigenvalues over all modes (eq. (3) bookkeeping).
    pub discarded_energy: f64,
    /// `‖X‖²` of the global input tensor.
    pub norm_x_sq: f64,
    /// The order in which modes were processed.
    pub processed_order: Vec<usize>,
    /// This rank's wall-clock kernel breakdown.
    pub timings: KernelTimings,
}

/// Result of [`dist_hooi`] on one rank.
#[derive(Debug, Clone)]
pub struct DistHooiResult {
    /// The refined decomposition (distributed core, replicated factors).
    pub tucker: DistTucker,
    /// The reduced dimensions (fixed after initialization).
    pub ranks: Vec<usize>,
    /// `‖X‖² − ‖G‖²` after initialization and after each outer iteration.
    pub fit_history: Vec<f64>,
    /// Number of outer iterations performed.
    pub iterations: usize,
}

/// Parallel TTM `Z = Y ×_n op(V)` (Alg. 3).
///
/// `V` is replicated: with `NoTranspose` it is `K × I_n`, with `Transpose`
/// it is `I_n × K` (the factor-matrix convention of ST-HOSVD). Each rank
/// multiplies its block against its owned slice of `op(V)`, the partial
/// products are sum-reduced across the mode-`n` processor column with a
/// **mode-aware reduce-scatter** — the partial product is re-indexed so each
/// column member's mode-`n` block is contiguous, and the ring reduce-scatter
/// delivers to every rank only the fully summed block it owns. Per rank this
/// moves `(P_n − 1)·Ĵ_n·K/P` words, exactly the β term [`CostModel::ttm`]
/// charges for Alg. 3 (an all-reduce would move twice that and then discard
/// all but the owned block).
///
/// [`CostModel::ttm`]: tucker_distmem::CostModel::ttm
pub fn parallel_ttm(
    comm: &Communicator,
    y: &DistTensor,
    v: &Matrix,
    n: usize,
    trans: TtmTranspose,
) -> DistTensor {
    parallel_ttm_ctx(comm, y, v, n, trans, &hybrid_ctx(comm))
}

/// [`parallel_ttm`] on an explicit per-rank execution context: the local TTM
/// runs on this rank's share of the shared pool (hybrid ranks × threads).
pub fn parallel_ttm_ctx(
    comm: &Communicator,
    y: &DistTensor,
    v: &Matrix,
    n: usize,
    trans: TtmTranspose,
    ctx: &ExecContext,
) -> DistTensor {
    let dims = y.global_dims();
    assert!(n < dims.len(), "parallel_ttm: mode {n} out of range");
    let in_dim = dims[n];
    let k = match trans {
        TtmTranspose::NoTranspose => {
            assert_eq!(v.cols(), in_dim, "parallel_ttm: V must be K × I_n");
            v.rows()
        }
        TtmTranspose::Transpose => {
            assert_eq!(v.rows(), in_dim, "parallel_ttm: V must be I_n × K");
            v.cols()
        }
    };

    // Local multiply against the owned column slice of op(V).
    let (off, len) = y.ranges()[n];
    let v_slice = match trans {
        TtmTranspose::NoTranspose => v.col_block(off, off + len),
        TtmTranspose::Transpose => v.row_block(off, off + len),
    };
    let partial = ttm_ctx(ctx, y.local(), &v_slice, n, trans);

    let mut new_dims = y.global_dims().to_vec();
    new_dims[n] = k;

    let col_group = SubCommunicator::mode_column(comm, n);
    if col_group.size() == 1 {
        // Single processor column: the partial product is already the result,
        // and this rank keeps the whole mode (bit-identical to the sequential
        // TTM on one rank).
        let mut new_ranges = y.ranges().to_vec();
        new_ranges[n] = (0, k);
        return DistTensor::from_parts(new_dims, new_ranges, partial);
    }

    // Re-index the partial product into block-major order along mode n: the
    // slab owned by column member q (mode-n indices `block_range(k, P_n, q)`)
    // becomes one contiguous chunk, flattened in natural order.
    let pn = col_group.size();
    let jhat = partial.codim(n);
    let mut packed = Vec::with_capacity(partial.len());
    let mut counts = Vec::with_capacity(pn);
    let mut block_ranges: Vec<(usize, usize)> =
        partial.dims().iter().map(|&d| (0usize, d)).collect();
    for q in 0..pn {
        let (qoff, qlen) = ProcGrid::block_range(k, pn, q);
        counts.push(qlen * jhat);
        if qlen > 0 {
            block_ranges[n] = (qoff, qlen);
            let block = extract_subtensor(&partial, &spec_from_ranges(&block_ranges));
            packed.extend_from_slice(block.as_slice());
        }
    }

    // Mode-aware reduce-scatter: each member receives exactly its own fully
    // summed block, already flattened in the natural order of the local tensor.
    let mine = reduce_scatter_blocks(&col_group, &packed, &counts);

    let (ks, kl) = comm.grid().local_range(comm.rank(), n, k);
    let mut local_dims = partial.dims().to_vec();
    local_dims[n] = kl;
    let local = DenseTensor::from_vec(&local_dims, mine);

    let mut new_ranges = y.ranges().to_vec();
    new_ranges[n] = (ks, kl);
    DistTensor::from_parts(new_dims, new_ranges, local)
}

/// Parallel Gram `S = Y(n)·Y(n)ᵀ` (Alg. 4): returns this rank's **row block**
/// of the global `I_n × I_n` Gram matrix (rows `ranges()[n]`, all columns).
///
/// The ranks of a mode-`n` processor column share the same non-`n` local
/// ranges, so their unfolding panels cover the same global columns; the ring
/// of shifted sendrecv exchanges (Alg. 4 lines 9–10) rotates those panels so
/// each rank accumulates `W_me · W_qᵀ` into the column block of every owner
/// `q`. The partial row block is then sum-reduced across the mode-`n`
/// processor row (the ranks owning the remaining global columns).
pub fn parallel_gram(comm: &Communicator, y: &DistTensor, n: usize) -> Matrix {
    parallel_gram_ctx(comm, y, n, &hybrid_ctx(comm))
}

/// [`parallel_gram`] on an explicit per-rank execution context.
pub fn parallel_gram_ctx(
    comm: &Communicator,
    y: &DistTensor,
    n: usize,
    ctx: &ExecContext,
) -> Matrix {
    let dims = y.global_dims();
    assert!(n < dims.len(), "parallel_gram: mode {n} out of range");
    let col_group = SubCommunicator::mode_column(comm, n);
    let row_group = SubCommunicator::mode_row(comm, n);

    if col_group.size() == 1 && row_group.size() == 1 {
        // Single rank: defer to the local kernel (bit-identical).
        return gram_ctx(ctx, y.local(), n);
    }

    let in_total = dims[n];
    let pn = col_group.size();
    let my_pos = col_group.pos();
    let (_, my_len) = y.ranges()[n];

    // This rank's panel of the mode-n unfolding: my_len × (local columns).
    let w_me = Unfolding::new(y.local().dims(), n).materialize(y.local());
    let mut s_partial = Matrix::zeros(my_len, in_total);

    // Ring over the processor column: after step s we hold the panel of the
    // member at position (my_pos + s) mod P_n.
    let mut current: Vec<f64> = w_me.as_slice().to_vec();
    let mut owner = my_pos;
    for step in 0..pn {
        let (q_off, q_len) = ProcGrid::block_range(in_total, pn, owner);
        if q_len > 0 && my_len > 0 {
            let panel_q = Matrix::from_vec(q_len, w_me.cols(), current.clone());
            // W_me · W_qᵀ — the (my rows × owner's rows) block over the shared
            // local columns.
            let contrib = gemm_ctx(ctx, Transpose::No, Transpose::Yes, 1.0, &w_me, &panel_q);
            for i in 0..my_len {
                s_partial.row_mut(i)[q_off..q_off + q_len].copy_from_slice(contrib.row(i));
            }
        }
        if step + 1 < pn {
            // Shift panels one position around the ring.
            let dst = (my_pos + pn - 1) % pn;
            let src = (my_pos + 1) % pn;
            current = col_group.sendrecv(dst, &current, src);
            owner = (owner + 1) % pn;
        }
    }

    // Sum the contributions of all column sets (the mode-n processor row).
    if row_group.size() == 1 {
        return s_partial;
    }
    let summed = all_reduce(&row_group, s_partial.as_slice());
    Matrix::from_vec(my_len, in_total, summed)
}

/// Parallel leading-eigenvector computation (Alg. 5).
///
/// The row blocks produced by [`parallel_gram`] are all-gathered within the
/// mode-`n` processor column so every rank holds the full (small) `I_n × I_n`
/// Gram matrix, and the symmetric eigenproblem is solved **redundantly** on
/// every rank — the paper's choice, which keeps the factors replicated and
/// costs `β·(P_n−1)/P_n·I_n²` words instead of a distributed eigensolver.
pub fn parallel_evecs(comm: &Communicator, y: &DistTensor, n: usize, s_block: &Matrix) -> SymEig {
    let s = assemble_gram(comm, y, n, s_block);
    sym_eig_desc(&s)
}

/// All-gathers the per-rank row blocks of the mode-`n` Gram matrix into the
/// full `I_n × I_n` matrix (identical on every rank of the processor column).
pub fn assemble_gram(comm: &Communicator, y: &DistTensor, n: usize, s_block: &Matrix) -> Matrix {
    let in_total = y.global_dims()[n];
    let col_group = SubCommunicator::mode_column(comm, n);
    if col_group.size() == 1 {
        return s_block.clone();
    }
    // Row blocks are row-major and ordered by mode-n coordinate, so the
    // concatenation of the gathered buffers is the full matrix.
    let data = all_gather(&col_group, s_block.as_slice());
    Matrix::from_vec(in_total, in_total, data)
}

/// Distributed ST-HOSVD (Alg. 1 over Algs. 3–5).
///
/// Mirrors [`crate::sthosvd::st_hosvd`] step for step: for each mode in the
/// resolved order, Gram → eigenvectors → rank selection → truncating TTM.
/// Rank selection is driven by the global `‖X‖²`, so every rank picks the
/// same ranks; on a single rank the arithmetic is identical to the
/// sequential algorithm.
pub fn dist_st_hosvd(
    comm: &Communicator,
    x: &DistTensor,
    opts: &SthosvdOptions,
) -> DistSthosvdResult {
    dist_st_hosvd_ctx(comm, x, opts, &hybrid_ctx(comm))
}

/// [`dist_st_hosvd`] on an explicit per-rank execution context (hybrid
/// ranks × threads; [`KernelTimings::thread_budget`] records the budget).
pub fn dist_st_hosvd_ctx(
    comm: &Communicator,
    x: &DistTensor,
    opts: &SthosvdOptions,
    ctx: &ExecContext,
) -> DistSthosvdResult {
    let nmodes = x.global_dims().len();
    let _span = tucker_obs::span!(
        "dist_st_hosvd",
        nmodes = nmodes,
        ranks = comm.size(),
        thread_budget = ctx.threads(),
    );
    let norm_x_sq = x.global_norm_sq(comm);

    let order = opts.order.resolve(
        x.global_dims(),
        &validate::rank_hint(&opts.rank, x.global_dims()),
    );

    let mut y = x.clone();
    let mut factors: Vec<Option<Matrix>> = vec![None; nmodes];
    let mut ranks = vec![0usize; nmodes];
    let mut mode_eigenvalues: Vec<Vec<f64>> = vec![Vec::new(); nmodes];
    let mut discarded_energy = 0.0;
    let mut timings = KernelTimings::new(nmodes);
    timings.thread_budget = ctx.threads();

    for &n in &order {
        let _mode_span = tucker_obs::span!("dist_st_hosvd.mode", mode = n);
        let s_block = {
            let _k = tucker_obs::span!("dist.gram", mode = n);
            let t0 = Instant::now();
            let s_block = parallel_gram_ctx(comm, &y, n, ctx);
            timings.gram[n] += t0.elapsed().as_secs_f64();
            s_block
        };

        let eig = {
            let _k = tucker_obs::span!("dist.evecs", mode = n);
            let t0 = Instant::now();
            let eig = parallel_evecs(comm, &y, n, &s_block);
            timings.evecs[n] += t0.elapsed().as_secs_f64();
            eig
        };

        let r = opts.rank.select(n, &eig.values, norm_x_sq, nmodes);
        let u = eig.leading_vectors(r);
        discarded_energy += discarded_tail(&eig.values, r);
        mode_eigenvalues[n] = eig.values;
        ranks[n] = r;

        {
            let _k = tucker_obs::span!("dist.ttm", mode = n);
            let t0 = Instant::now();
            y = parallel_ttm_ctx(comm, &y, &u, n, TtmTranspose::Transpose, ctx);
            timings.ttm[n] += t0.elapsed().as_secs_f64();
        }

        factors[n] = Some(u);
    }

    let factors: Vec<Matrix> = factors
        .into_iter()
        .map(|f| f.expect("every mode must be processed"))
        .collect();

    DistSthosvdResult {
        tucker: DistTucker { core: y, factors },
        ranks,
        mode_eigenvalues,
        discarded_energy,
        norm_x_sq,
        processed_order: order,
        timings,
    }
}

/// Validates the global shape / order / rank selection of a distributed run
/// plus the processor grid itself (no mode may have more processes than
/// elements, or some ranks would own empty blocks).
fn validate_dist_inputs(
    comm: &Communicator,
    x: &DistTensor,
    opts: &SthosvdOptions,
) -> Result<(), CoreError> {
    validate::validate_sthosvd_inputs(x.global_dims(), opts)?;
    validate::validate_grid(x.global_dims(), comm.grid().shape())?;
    Ok(())
}

/// Fallible [`dist_st_hosvd`]: validates the global shape, mode order, rank
/// selection, and processor grid, returning a [`CoreError`] instead of
/// panicking. Every rank of the grid must call this (it is itself
/// collective); on valid input the result is the same, bit for bit.
pub fn try_dist_st_hosvd(
    comm: &Communicator,
    x: &DistTensor,
    opts: &SthosvdOptions,
) -> Result<DistSthosvdResult, CoreError> {
    try_dist_st_hosvd_ctx(comm, x, opts, &hybrid_ctx(comm))
}

/// Fallible [`dist_st_hosvd_ctx`]; see [`try_dist_st_hosvd`].
pub fn try_dist_st_hosvd_ctx(
    comm: &Communicator,
    x: &DistTensor,
    opts: &SthosvdOptions,
    ctx: &ExecContext,
) -> Result<DistSthosvdResult, CoreError> {
    validate_dist_inputs(comm, x, opts)?;
    Ok(dist_st_hosvd_ctx(comm, x, opts, ctx))
}

/// Fallible [`dist_hooi`]: validates like [`try_dist_st_hosvd`] and returns
/// a [`CoreError`] instead of panicking.
pub fn try_dist_hooi(
    comm: &Communicator,
    x: &DistTensor,
    opts: &HooiOptions,
) -> Result<DistHooiResult, CoreError> {
    try_dist_hooi_ctx(comm, x, opts, &hybrid_ctx(comm))
}

/// Fallible [`dist_hooi_ctx`]; see [`try_dist_hooi`].
pub fn try_dist_hooi_ctx(
    comm: &Communicator,
    x: &DistTensor,
    opts: &HooiOptions,
    ctx: &ExecContext,
) -> Result<DistHooiResult, CoreError> {
    validate_dist_inputs(comm, x, &opts.init)?;
    Ok(dist_hooi_ctx(comm, x, opts, ctx))
}

/// Distributed HOOI (Alg. 2 over Algs. 3–5), initialized with
/// [`dist_st_hosvd`]. Mirrors [`crate::hooi::hooi`] step for step; the fit
/// `‖X‖² − ‖G‖²` is computed from globally reduced norms, so every rank makes
/// the same convergence decision.
pub fn dist_hooi(comm: &Communicator, x: &DistTensor, opts: &HooiOptions) -> DistHooiResult {
    dist_hooi_ctx(comm, x, opts, &hybrid_ctx(comm))
}

/// [`dist_hooi`] on an explicit per-rank execution context.
pub fn dist_hooi_ctx(
    comm: &Communicator,
    x: &DistTensor,
    opts: &HooiOptions,
    ctx: &ExecContext,
) -> DistHooiResult {
    let nmodes = x.global_dims().len();
    let _span = tucker_obs::span!(
        "dist_hooi",
        nmodes = nmodes,
        ranks = comm.size(),
        thread_budget = ctx.threads(),
    );
    let norm_x_sq = x.global_norm_sq(comm);

    let init = dist_st_hosvd_ctx(comm, x, &opts.init, ctx);
    let ranks = init.ranks.clone();
    let mut factors = init.tucker.factors;
    let mut core = init.tucker.core;
    let mut fit_history = vec![norm_x_sq - core.global_norm_sq(comm)];

    let mut iterations = 0;
    for _ in 0..opts.max_iterations {
        let _iter_span = tucker_obs::span!("dist_hooi.iteration", iteration = iterations);
        for n in 0..nmodes {
            // Y = X ×_{m≠n} U⁽ᵐ⁾ᵀ, applied in natural order (as the
            // sequential multi_ttm does).
            let mut y = x.clone();
            for m in 0..nmodes {
                if m != n {
                    y = parallel_ttm_ctx(comm, &y, &factors[m], m, TtmTranspose::Transpose, ctx);
                }
            }
            let s_block = parallel_gram_ctx(comm, &y, n, ctx);
            let eig = parallel_evecs(comm, &y, n, &s_block);
            factors[n] = eig.leading_vectors(ranks[n]);
            if n == nmodes - 1 {
                core = parallel_ttm_ctx(comm, &y, &factors[n], n, TtmTranspose::Transpose, ctx);
            }
        }
        iterations += 1;
        let fit = norm_x_sq - core.global_norm_sq(comm);
        let prev = *fit_history.last().unwrap();
        fit_history.push(fit);
        if prev - fit <= opts.fit_tolerance * norm_x_sq {
            break;
        }
    }

    DistHooiResult {
        tucker: DistTucker { core, factors },
        ranks,
        fit_history,
        iterations,
    }
}

/// Distributed reconstruction `X̂ = G ×₁ U⁽¹⁾ ⋯ ×_N U⁽ᴺ⁾`: a chain of
/// parallel TTMs that grows the distributed core back to the original
/// (distributed) dimensions.
pub fn dist_reconstruct(comm: &Communicator, t: &DistTucker) -> DistTensor {
    dist_reconstruct_ctx(comm, t, &hybrid_ctx(comm))
}

/// [`dist_reconstruct`] on an explicit per-rank execution context.
pub fn dist_reconstruct_ctx(comm: &Communicator, t: &DistTucker, ctx: &ExecContext) -> DistTensor {
    let mut y = t.core.clone();
    for (n, u) in t.factors.iter().enumerate() {
        y = parallel_ttm_ctx(comm, &y, u, n, TtmTranspose::NoTranspose, ctx);
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sthosvd::st_hosvd;
    use tucker_distmem::runtime::spmd_with_grid;
    use tucker_tensor::normalized_rms_error;

    fn wavy(dims: &[usize]) -> DenseTensor {
        DenseTensor::from_fn(dims, |idx| {
            let mut v = 0.5;
            for (k, &i) in idx.iter().enumerate() {
                v += ((k + 2) as f64 * 0.21 * i as f64).sin();
            }
            v
        })
    }

    #[test]
    fn blocks_tile_the_global_tensor() {
        let dims = [7usize, 5, 6];
        let x = wavy(&dims);
        let x2 = x.clone();
        let results = spmd_with_grid(ProcGrid::new(&[2, 1, 3]), move |comm| {
            let dx = DistTensor::from_global(&comm, &x2);
            (dx.ranges().to_vec(), dx.local().len())
        });
        let total: usize = results.iter().map(|(_, l)| l).sum();
        assert_eq!(total, x.len());
    }

    #[test]
    fn gather_round_trips_from_global() {
        let dims = [6usize, 9, 4];
        let x = wavy(&dims);
        let x2 = x.clone();
        let results = spmd_with_grid(ProcGrid::new(&[2, 3, 1]), move |comm| {
            DistTensor::from_global(&comm, &x2).gather_to_root(&comm)
        });
        let gathered = results[0].as_ref().expect("root holds the tensor");
        assert_eq!(gathered.dims(), x.dims());
        assert!(normalized_rms_error(&x, gathered) == 0.0);
        assert!(results[1..].iter().all(|r| r.is_none()));
    }

    #[test]
    fn global_norm_matches_sequential() {
        let dims = [8usize, 6, 5];
        let x = wavy(&dims);
        let expected = x.norm_sq();
        let results = spmd_with_grid(ProcGrid::new(&[2, 2, 1]), move |comm| {
            DistTensor::from_global(&comm, &x).global_norm_sq(&comm)
        });
        for v in results {
            assert!((v - expected).abs() < 1e-9 * expected);
        }
    }

    #[test]
    fn dist_sthosvd_timings_cover_all_modes() {
        let dims = [8usize, 8, 8];
        let x = wavy(&dims);
        let results = spmd_with_grid(ProcGrid::new(&[2, 2, 1]), move |comm| {
            let dx = DistTensor::from_global(&comm, &x);
            dist_st_hosvd(&comm, &dx, &SthosvdOptions::with_ranks(vec![3, 3, 3])).timings
        });
        for t in results {
            assert_eq!(t.gram.len(), 3);
            assert_eq!(t.evecs.len(), 3);
            assert_eq!(t.ttm.len(), 3);
            assert!(t.total() >= 0.0);
        }
    }

    #[test]
    fn dist_reconstruct_matches_gathered_sequential_reconstruction() {
        let dims = [8usize, 7, 6];
        let x = wavy(&dims);
        let x2 = x.clone();
        let seq = st_hosvd(&x, &SthosvdOptions::with_ranks(vec![3, 3, 3]));
        let seq_rec = seq.tucker.reconstruct();
        let results = spmd_with_grid(ProcGrid::new(&[1, 2, 2]), move |comm| {
            let dx = DistTensor::from_global(&comm, &x2);
            let r = dist_st_hosvd(&comm, &dx, &SthosvdOptions::with_ranks(vec![3, 3, 3]));
            dist_reconstruct(&comm, &r.tucker).gather_to_root(&comm)
        });
        let rec = results[0].as_ref().expect("root gathers reconstruction");
        assert!(normalized_rms_error(&seq_rec, rec) < 1e-9);
    }

    #[test]
    fn uneven_blocks_are_handled() {
        // 3 does not divide 7, and P_n exceeds the truncated rank in mode 1.
        let dims = [7usize, 5, 4];
        let x = wavy(&dims);
        let x2 = x.clone();
        let seq = st_hosvd(&x, &SthosvdOptions::with_ranks(vec![3, 2, 2]));
        let seq_rec = seq.tucker.reconstruct();
        let results = spmd_with_grid(ProcGrid::new(&[3, 3, 1]), move |comm| {
            let dx = DistTensor::from_global(&comm, &x2);
            let r = dist_st_hosvd(&comm, &dx, &SthosvdOptions::with_ranks(vec![3, 2, 2]));
            r.tucker.gather_to_root(&comm)
        });
        let rec = results[0].as_ref().unwrap().reconstruct();
        assert!(normalized_rms_error(&seq_rec, &rec) < 1e-8);
    }
}
