//! Out-of-core ST-HOSVD: the two-phase streaming driver.
//!
//! [`st_hosvd`](crate::sthosvd::st_hosvd) needs the full tensor resident
//! (twice, in fact — it clones its input before shrinking). This module
//! computes the *identical* decomposition from a [`SlabSource`] that yields
//! whole last-mode slabs on demand, so peak memory is
//! `O(slab + truncated tensor)` instead of `O(full tensor)`:
//!
//! * **Phase 1 — Gram/truncate.** For each non-streaming mode `n` (in
//!   processing order), stream the source once: every slab is shrunk through
//!   the factors found so far ([`ttm_slab_chain_ctx`]) and its mode-`n` Gram
//!   contribution accumulated ([`gram_accumulate_ctx`]); the mode is then
//!   truncated exactly as in Alg. 1. The source is touched once per
//!   non-streaming mode — the compute/memory trade the paper makes explicit
//!   for its out-of-core variant (Sec. II-B): redundant TTM work buys a
//!   resident set that never exceeds one slab plus the running Gram.
//! * **Phase 2 — core assembly.** One final sweep shrinks every slab through
//!   *all* non-streaming factors and writes it into the resident truncated
//!   tensor via [`DenseTensor::last_mode_slab_mut`]; the streaming mode is
//!   then processed in memory (its Gram needs all timestep pairs, which is
//!   exactly why it must come last) and the core emerges in whole last-mode
//!   slabs, ready for `tucker_store::TkrWriter`.
//!
//! **Bit-identity contract.** The output — factors, core, ranks,
//! eigenvalues, discarded energy, error bound — is bit-identical to
//! [`st_hosvd_ctx`](crate::sthosvd::st_hosvd_ctx) on the materialized tensor,
//! for every slab width and thread count. This rests on three kernel
//! invariants (see `crates/tensor/src/stream.rs` and
//! `docs/ARCHITECTURE.md` §6): non-last-mode TTM maps slabs to slabs
//! bitwise, Gram accumulation over consecutive slabs performs the sequential
//! per-element additions in the same order, and the running `‖X‖²` sum below
//! folds elements in storage order exactly like `DenseTensor::norm_sq`.
//! Pinned by `tests/streaming.rs` across odd shapes, slab widths (1, prime,
//! full) and thread counts including oversubscription.

use crate::rank::discarded_tail;
use crate::sthosvd::{SthosvdOptions, SthosvdResult};
use crate::tucker::TuckerTensor;
use crate::validate::{self, CoreError};
use serde::{Deserialize, Serialize};
use tucker_exec::ExecContext;
use tucker_linalg::eig::sym_eig_desc;
use tucker_linalg::Matrix;
use tucker_tensor::{
    gram_accumulate_ctx, gram_ctx, take_slab, ttm_ctx, ttm_slab_ctx, DenseTensor, SlabSource,
    TtmTranspose,
};

/// Options of the streaming driver (everything algorithmic lives in
/// [`SthosvdOptions`]; this only shapes the IO pattern).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingOptions {
    /// Last-mode steps per slab. Larger slabs amortize per-slab overhead at
    /// the cost of a proportionally larger resident buffer; the *results*
    /// are bit-identical for every value. Clamped to at least 1.
    pub slab_width: usize,
}

impl StreamingOptions {
    /// Streams `width` last-mode steps at a time.
    pub fn with_slab_width(width: usize) -> Self {
        StreamingOptions {
            slab_width: width.max(1),
        }
    }
}

impl Default for StreamingOptions {
    /// A slab of 1 — the strictest memory profile (one timestep resident).
    fn default() -> Self {
        StreamingOptions::with_slab_width(1)
    }
}

/// Computes the ST-HOSVD of a slab source on the global execution context.
/// See [`st_hosvd_streaming_ctx`].
pub fn st_hosvd_streaming(
    src: &impl SlabSource,
    opts: &SthosvdOptions,
    stream: &StreamingOptions,
) -> SthosvdResult {
    st_hosvd_streaming_ctx(src, opts, stream, ExecContext::global())
}

/// [`st_hosvd_streaming`] on an explicit execution context.
///
/// The result is **bit-identical** to
/// [`st_hosvd_ctx`](crate::sthosvd::st_hosvd_ctx) on the materialized tensor
/// for every slab width and thread count (see the module docs for why).
///
/// # Panics
/// Panics if the source has fewer than two modes, or if the resolved mode
/// order does not process the streaming (last) mode last — the last mode's
/// Gram couples every pair of slabs, so it can only be processed once the
/// others have shrunk the tensor into memory. `ModeOrder::Natural` always
/// satisfies this.
pub fn st_hosvd_streaming_ctx(
    src: &impl SlabSource,
    opts: &SthosvdOptions,
    stream: &StreamingOptions,
    ctx: &ExecContext,
) -> SthosvdResult {
    match try_st_hosvd_streaming_ctx(src, opts, stream, ctx) {
        Ok(r) => r,
        Err(e) => panic!("st_hosvd_streaming: invalid input: {e}"),
    }
}

/// Fallible [`st_hosvd_streaming`]: validates the source shape, mode order
/// (which must process the streaming mode last), and rank selection,
/// returning a [`CoreError`] instead of panicking. On valid input the result
/// is the same, bit for bit.
pub fn try_st_hosvd_streaming(
    src: &impl SlabSource,
    opts: &SthosvdOptions,
    stream: &StreamingOptions,
) -> Result<SthosvdResult, CoreError> {
    try_st_hosvd_streaming_ctx(src, opts, stream, ExecContext::global())
}

/// Fallible [`st_hosvd_streaming_ctx`]; see [`try_st_hosvd_streaming`].
pub fn try_st_hosvd_streaming_ctx(
    src: &impl SlabSource,
    opts: &SthosvdOptions,
    stream: &StreamingOptions,
    ctx: &ExecContext,
) -> Result<SthosvdResult, CoreError> {
    validate::validate_streaming_inputs(src.dims(), opts)?;
    Ok(st_hosvd_streaming_unchecked(src, opts, stream, ctx))
}

/// The two-phase streaming kernel itself; inputs have been validated.
fn st_hosvd_streaming_unchecked(
    src: &impl SlabSource,
    opts: &SthosvdOptions,
    stream: &StreamingOptions,
    ctx: &ExecContext,
) -> SthosvdResult {
    let dims = src.dims().to_vec();
    let nmodes = dims.len();
    let _span = tucker_obs::span!(
        "st_hosvd_streaming",
        nmodes = nmodes,
        slab_width = stream.slab_width.max(1),
        threads = ctx.threads(),
    );
    assert!(
        nmodes >= 2,
        "st_hosvd_streaming: need at least 2 modes (got {nmodes})"
    );
    let last = nmodes - 1;
    let last_dim = dims[last];
    let width = stream.slab_width.max(1);

    // Resolve the processing order exactly like the in-memory driver (and
    // like validate_streaming_inputs, which certified it ends in the last
    // mode — one shared rank_hint, so they cannot drift).
    let order = opts
        .order
        .resolve(&dims, &validate::rank_hint(&opts.rank, &dims));
    assert_eq!(
        order.last(),
        Some(&last),
        "st_hosvd_streaming: the streaming (last) mode must be processed last \
         (resolved order {order:?}); use ModeOrder::Natural or a custom order \
         ending in mode {last}"
    );

    let mut factors: Vec<Option<Matrix>> = vec![None; nmodes];
    let mut ranks = vec![0usize; nmodes];
    let mut mode_eigenvalues: Vec<Vec<f64>> = vec![Vec::new(); nmodes];
    let mut discarded_energy = 0.0;
    let mut norm_x_sq = 0.0;
    let mut slab_buf: Vec<f64> = Vec::new();

    // Phase 1: one streaming sweep per non-streaming mode, in processing
    // order. Each sweep shrinks every slab through the factors found so far
    // and accumulates the mode's Gram; the first sweep also folds ‖X‖²
    // element by element in storage order (identical to `norm_sq` on the
    // materialized tensor, which rank selection depends on).
    for (step, &n) in order[..nmodes - 1].iter().enumerate() {
        let _sweep_span = tucker_obs::span!("streaming.sweep", mode = n, step = step);
        let mut s = Matrix::zeros(dims[n], dims[n]);
        let mut start = 0usize;
        while start < last_dim {
            let w = width.min(last_dim - start);
            let slab = take_slab(src, start, w, std::mem::take(&mut slab_buf));
            if step == 0 {
                for &v in slab.as_slice() {
                    norm_x_sq += v * v;
                }
            }
            let shrunk = shrink_slab(ctx, slab, &factors, &order, &mut slab_buf);
            gram_accumulate_ctx(ctx, &shrunk, n, &mut s);
            if slab_buf.is_empty() {
                // No factor applied yet (first sweep): the "shrunk" tensor
                // *is* the slab — recycle its buffer directly.
                slab_buf = shrunk.into_vec();
            }
            start += w;
        }
        let eig = sym_eig_desc(&s);
        let r = opts.rank.select(n, &eig.values, norm_x_sq, nmodes);
        let u = eig.leading_vectors(r);
        discarded_energy += discarded_tail(&eig.values, r);
        mode_eigenvalues[n] = eig.values;
        ranks[n] = r;
        factors[n] = Some(u);
    }

    // Phase 2: final sweep — shrink each slab through every non-streaming
    // factor and write it straight into the resident truncated tensor.
    let _phase2_span = tucker_obs::span!("streaming.assemble", mode = last);
    let mut trunc_dims = ranks.clone();
    trunc_dims[last] = last_dim;
    let mut y = DenseTensor::zeros(&trunc_dims);
    let mut start = 0usize;
    while start < last_dim {
        let w = width.min(last_dim - start);
        let slab = take_slab(src, start, w, std::mem::take(&mut slab_buf));
        let shrunk = shrink_slab(ctx, slab, &factors, &order, &mut slab_buf);
        y.last_mode_slab_mut(start, w)
            .copy_from_slice(shrunk.as_slice());
        if slab_buf.is_empty() {
            slab_buf = shrunk.into_vec();
        }
        start += w;
    }

    // The streaming mode itself: everything left is O(truncated tensor).
    let s = gram_ctx(ctx, &y, last);
    let eig = sym_eig_desc(&s);
    let r = opts.rank.select(last, &eig.values, norm_x_sq, nmodes);
    let u = eig.leading_vectors(r);
    discarded_energy += discarded_tail(&eig.values, r);
    mode_eigenvalues[last] = eig.values;
    ranks[last] = r;
    let core = ttm_ctx(ctx, &y, &u, last, TtmTranspose::Transpose);
    factors[last] = Some(u);

    let factors: Vec<Matrix> = factors
        .into_iter()
        .map(|f| f.expect("every mode was processed"))
        .collect();
    SthosvdResult {
        tucker: TuckerTensor::new(core, factors),
        ranks,
        mode_eigenvalues,
        discarded_energy,
        norm_x_sq,
        processed_order: order,
    }
}

/// Applies every already-found factor (transposed, in processing order) to a
/// slab — [`ttm_slab_ctx`] per mode, so the result is bitwise the
/// corresponding slab of the full shrunk tensor. The slab's own (large)
/// buffer is handed back through `recycle` as soon as the first TTM output
/// replaces it, so sweep loops reuse one slab-sized allocation instead of
/// re-allocating per slab; `recycle` is left empty when no factor was
/// applied (the slab is returned unchanged and the caller recycles it).
fn shrink_slab(
    ctx: &ExecContext,
    slab: DenseTensor,
    factors: &[Option<Matrix>],
    order: &[usize],
    recycle: &mut Vec<f64>,
) -> DenseTensor {
    let mut cur = slab;
    let mut first = true;
    for &n in order {
        if let Some(u) = &factors[n] {
            let next = ttm_slab_ctx(ctx, &cur, u, n, TtmTranspose::Transpose);
            if first {
                *recycle = cur.into_vec();
                first = false;
            }
            cur = next;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::ModeOrder;
    use crate::sthosvd::st_hosvd_ctx;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tensor(rng: &mut StdRng, dims: &[usize]) -> DenseTensor {
        DenseTensor::from_fn(dims, |_| rng.gen_range(-1.0..1.0))
    }

    fn assert_results_bit_identical(a: &SthosvdResult, b: &SthosvdResult) {
        assert_eq!(a.ranks, b.ranks);
        assert_eq!(a.processed_order, b.processed_order);
        assert_eq!(a.norm_x_sq.to_bits(), b.norm_x_sq.to_bits());
        assert_eq!(a.discarded_energy.to_bits(), b.discarded_energy.to_bits());
        assert_eq!(a.mode_eigenvalues, b.mode_eigenvalues);
        assert_eq!(a.tucker.core.as_slice(), b.tucker.core.as_slice());
        for (fa, fb) in a.tucker.factors.iter().zip(b.tucker.factors.iter()) {
            assert_eq!(fa.as_slice(), fb.as_slice());
        }
    }

    #[test]
    fn streaming_matches_in_memory_bitwise() {
        let mut rng = StdRng::seed_from_u64(90);
        let x = random_tensor(&mut rng, &[9, 7, 8, 6]);
        let opts = SthosvdOptions::with_tolerance(0.2);
        let baseline = st_hosvd_ctx(&x, &opts, &ExecContext::new(1));
        for w in [1usize, 3, 6] {
            let r = st_hosvd_streaming_ctx(
                &x,
                &opts,
                &StreamingOptions::with_slab_width(w),
                &ExecContext::new(1),
            );
            assert_results_bit_identical(&r, &baseline);
        }
    }

    #[test]
    fn streaming_matches_in_memory_with_fixed_ranks() {
        let mut rng = StdRng::seed_from_u64(91);
        let x = random_tensor(&mut rng, &[10, 9, 7]);
        let opts = SthosvdOptions::with_ranks(vec![4, 3, 2]);
        let ctx = ExecContext::new(4);
        let baseline = st_hosvd_ctx(&x, &opts, &ctx);
        let r = st_hosvd_streaming_ctx(&x, &opts, &StreamingOptions::default(), &ctx);
        assert_results_bit_identical(&r, &baseline);
    }

    #[test]
    fn custom_order_ending_in_last_mode_is_accepted() {
        let mut rng = StdRng::seed_from_u64(92);
        let x = random_tensor(&mut rng, &[6, 7, 5]);
        let opts = SthosvdOptions::with_tolerance(0.3).order(ModeOrder::Custom(vec![1, 0, 2]));
        let baseline = st_hosvd_ctx(&x, &opts, &ExecContext::new(1));
        let r = st_hosvd_streaming_ctx(
            &x,
            &opts,
            &StreamingOptions::with_slab_width(2),
            &ExecContext::new(1),
        );
        assert_results_bit_identical(&r, &baseline);
    }

    #[test]
    #[should_panic]
    fn order_not_ending_in_streaming_mode_panics() {
        let x = DenseTensor::zeros(&[4, 4, 4]);
        let opts = SthosvdOptions::with_tolerance(0.1).order(ModeOrder::Custom(vec![2, 1, 0]));
        st_hosvd_streaming(&x, &opts, &StreamingOptions::default());
    }

    #[test]
    #[should_panic]
    fn one_way_tensor_panics() {
        let x = DenseTensor::zeros(&[4]);
        st_hosvd_streaming(
            &x,
            &SthosvdOptions::with_tolerance(0.1),
            &StreamingOptions::default(),
        );
    }
}
