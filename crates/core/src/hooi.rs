//! Higher-order orthogonal iteration (HOOI), Alg. 2 of the paper.
//!
//! HOOI is an alternating optimization that refines an initial Tucker
//! decomposition (here the ST-HOSVD). Each outer iteration cycles through the
//! modes: for mode `n`, the tensor is multiplied by every *other* factor
//! transposed, the Gram matrix of the result's mode-n unfolding is formed, and
//! its leading eigenvectors replace `U⁽ⁿ⁾`. The fit is tracked through
//! `‖X‖² − ‖G‖²` (line 10), which decreases monotonically.

use crate::sthosvd::{st_hosvd_ctx, SthosvdOptions};
use crate::tucker::TuckerTensor;
use crate::validate::{self, CoreError};
use serde::{Deserialize, Serialize};
use tucker_exec::{ExecContext, Workspace};
use tucker_linalg::eig::sym_eig_desc;
use tucker_linalg::Matrix;
use tucker_obs::metrics::Counter;
use tucker_tensor::{gram_ctx, ttm_ctx, ttm_into_ctx, DenseTensor, TtmTranspose};

/// Options controlling HOOI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HooiOptions {
    /// Options for the ST-HOSVD initialization (rank selection + mode order).
    pub init: SthosvdOptions,
    /// Maximum number of outer iterations.
    pub max_iterations: usize,
    /// Stop when the decrease of `‖X‖² − ‖G‖²` between outer iterations falls
    /// below this fraction of `‖X‖²`.
    pub fit_tolerance: f64,
}

impl HooiOptions {
    /// Tolerance-driven compression, at most `max_iterations` HOOI sweeps.
    pub fn with_tolerance(eps: f64, max_iterations: usize) -> Self {
        HooiOptions {
            init: SthosvdOptions::with_tolerance(eps),
            max_iterations,
            fit_tolerance: 1e-10,
        }
    }

    /// Fixed ranks, at most `max_iterations` HOOI sweeps.
    pub fn with_ranks(ranks: Vec<usize>, max_iterations: usize) -> Self {
        HooiOptions {
            init: SthosvdOptions::with_ranks(ranks),
            max_iterations,
            fit_tolerance: 1e-10,
        }
    }
}

/// Result of a HOOI run.
#[derive(Debug, Clone)]
pub struct HooiResult {
    /// The refined decomposition.
    pub tucker: TuckerTensor,
    /// The reduced dimensions (fixed after initialization).
    pub ranks: Vec<usize>,
    /// The value of `‖X‖² − ‖G‖²` after initialization and after each outer
    /// iteration (so `fit_history.len() == iterations + 1`).
    pub fit_history: Vec<f64>,
    /// Number of outer iterations performed.
    pub iterations: usize,
}

impl HooiResult {
    /// The relative reconstruction error estimate derived from the final fit:
    /// `sqrt((‖X‖² − ‖G‖²)/‖X‖²)` — exact for orthonormal factors.
    pub fn relative_error_estimate(&self, norm_x_sq: f64) -> f64 {
        let last = *self.fit_history.last().unwrap_or(&0.0);
        if norm_x_sq <= 0.0 {
            0.0
        } else {
            (last.max(0.0) / norm_x_sq).sqrt()
        }
    }
}

/// Computes a Tucker decomposition by HOOI (Alg. 2), initialized with
/// ST-HOSVD, on the global execution context.
pub fn hooi(x: &DenseTensor, opts: &HooiOptions) -> HooiResult {
    hooi_ctx(x, opts, ExecContext::global())
}

/// [`hooi`] on an explicit execution context.
///
/// The TTM chain of every factor update runs through a [`Workspace`]: the
/// shrinking intermediates of Alg. 2 line 5 ping-pong between recycled
/// buffers instead of allocating `O(iterations × modes²)` fresh tensors.
/// Results are bit-identical to the allocating formulation and across thread
/// counts.
///
/// # Panics
/// Panics on structurally invalid input (see
/// [`crate::sthosvd::st_hosvd`]); use [`try_hooi_ctx`] for a
/// [`CoreError`] instead.
pub fn hooi_ctx(x: &DenseTensor, opts: &HooiOptions, ctx: &ExecContext) -> HooiResult {
    match try_hooi_ctx(x, opts, ctx) {
        Ok(r) => r,
        Err(e) => panic!("hooi: invalid input: {e}"),
    }
}

/// Fallible [`hooi`]: validates the initialization options (shape, mode
/// order, rank selection) and returns a [`CoreError`] instead of panicking.
/// On valid input the result is the same, bit for bit.
pub fn try_hooi(x: &DenseTensor, opts: &HooiOptions) -> Result<HooiResult, CoreError> {
    try_hooi_ctx(x, opts, ExecContext::global())
}

/// Fallible [`hooi_ctx`]; see [`try_hooi`].
pub fn try_hooi_ctx(
    x: &DenseTensor,
    opts: &HooiOptions,
    ctx: &ExecContext,
) -> Result<HooiResult, CoreError> {
    validate::validate_sthosvd_inputs(x.dims(), &opts.init)?;
    Ok(hooi_unchecked(x, opts, ctx))
}

/// Outer HOOI iterations actually executed (convergence may stop early);
/// see `tucker-obs` — driver-level counterpart of the kernel flop counters.
static HOOI_ITERATIONS: Counter = Counter::new("core.hooi.iterations");

/// The Alg. 2 kernel itself; inputs have been validated.
fn hooi_unchecked(x: &DenseTensor, opts: &HooiOptions, ctx: &ExecContext) -> HooiResult {
    let nmodes = x.ndims();
    let _span = tucker_obs::span!("hooi", nmodes = nmodes, threads = ctx.threads());
    let norm_x_sq = x.norm_sq();

    // Line 2: initialize with ST-HOSVD; the ranks are frozen afterwards.
    let init = st_hosvd_ctx(x, &opts.init, ctx);
    let ranks = init.ranks.clone();
    let mut factors: Vec<Matrix> = init.tucker.factors.clone();
    let mut core = init.tucker.core.clone();
    let mut fit_history = vec![norm_x_sq - core.norm_sq()];
    let mut ws = Workspace::new();

    let mut iterations = 0;
    for _ in 0..opts.max_iterations {
        let _iter_span = tucker_obs::span!("hooi.iteration", iteration = iterations);
        HOOI_ITERATIONS.inc();
        // Lines 4–8: update each factor in turn.
        for n in 0..nmodes {
            // Y = X ×_{m≠n} U⁽ᵐ⁾ᵀ, applied in natural order through
            // workspace-recycled intermediates (`None` means "still X").
            let mut cur: Option<DenseTensor> = None;
            for m in (0..nmodes).filter(|&m| m != n) {
                let src: &DenseTensor = cur.as_ref().unwrap_or(x);
                let mut out_dims = src.dims().to_vec();
                out_dims[m] = ranks[m];
                let len = out_dims.iter().product();
                let mut out = DenseTensor::from_vec(&out_dims, ws.take(len));
                ttm_into_ctx(ctx, src, &factors[m], m, TtmTranspose::Transpose, &mut out);
                if let Some(prev) = cur.take() {
                    ws.give(prev.into_vec());
                }
                cur = Some(out);
            }
            let y: &DenseTensor = cur.as_ref().unwrap_or(x);
            let s = gram_ctx(ctx, y, n);
            let eig = sym_eig_desc(&s);
            factors[n] = eig.leading_vectors(ranks[n]);
            // Line 9 (executed on the last mode): the current Y already has all
            // products except mode n applied, so the new core is Y ×_n U⁽ⁿ⁾ᵀ.
            if n == nmodes - 1 {
                let old = std::mem::replace(
                    &mut core,
                    ttm_ctx(ctx, y, &factors[n], n, TtmTranspose::Transpose),
                );
                ws.give(old.into_vec());
            }
            if let Some(t) = cur {
                ws.give(t.into_vec());
            }
        }
        iterations += 1;
        let fit = norm_x_sq - core.norm_sq();
        let prev = *fit_history.last().unwrap();
        fit_history.push(fit);
        // Line 10: stop when the fit ceases to decrease meaningfully.
        if prev - fit <= opts.fit_tolerance * norm_x_sq {
            break;
        }
    }

    HooiResult {
        tucker: TuckerTensor::new(core, factors),
        ranks,
        fit_history,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sthosvd::st_hosvd;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tucker_tensor::{normalized_rms_error, ttm_chain};

    fn random_tensor(rng: &mut StdRng, dims: &[usize]) -> DenseTensor {
        DenseTensor::from_fn(dims, |_| rng.gen_range(-1.0..1.0))
    }

    fn low_rank_plus_noise(
        rng: &mut StdRng,
        dims: &[usize],
        ranks: &[usize],
        noise: f64,
    ) -> DenseTensor {
        let core = DenseTensor::from_fn(ranks, |_| rng.gen_range(-1.0..1.0));
        let factors: Vec<Matrix> = dims
            .iter()
            .zip(ranks.iter())
            .map(|(&d, &r)| {
                let m = Matrix::from_fn(d, r, |_, _| rng.gen_range(-1.0..1.0));
                tucker_linalg::qr::householder_qr(&m).q
            })
            .collect();
        let refs: Vec<&Matrix> = factors.iter().collect();
        let mut x = ttm_chain(&core, &refs, TtmTranspose::NoTranspose);
        if noise > 0.0 {
            let xnorm = x.norm();
            let e = random_tensor(rng, dims);
            let scale = noise * xnorm / e.norm();
            for (xi, ei) in x.as_mut_slice().iter_mut().zip(e.as_slice()) {
                *xi += scale * ei;
            }
        }
        x
    }

    #[test]
    fn exact_low_rank_recovery() {
        let mut rng = StdRng::seed_from_u64(90);
        let x = low_rank_plus_noise(&mut rng, &[10, 9, 8], &[3, 3, 3], 0.0);
        let result = hooi(&x, &HooiOptions::with_tolerance(1e-6, 3));
        let rec = result.tucker.reconstruct();
        assert!(normalized_rms_error(&x, &rec) < 1e-6);
        assert_eq!(result.ranks, vec![3, 3, 3]);
    }

    #[test]
    fn fit_decreases_monotonically() {
        let mut rng = StdRng::seed_from_u64(91);
        let x = low_rank_plus_noise(&mut rng, &[10, 10, 10], &[3, 3, 3], 0.3);
        let result = hooi(&x, &HooiOptions::with_ranks(vec![3, 3, 3], 6));
        for w in result.fit_history.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9 * x.norm_sq(),
                "fit increased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn hooi_not_worse_than_sthosvd() {
        let mut rng = StdRng::seed_from_u64(92);
        let x = low_rank_plus_noise(&mut rng, &[12, 10, 9], &[4, 3, 3], 0.5);
        let st = st_hosvd(&x, &SthosvdOptions::with_ranks(vec![4, 3, 3]));
        let ho = hooi(&x, &HooiOptions::with_ranks(vec![4, 3, 3], 5));
        let st_err = normalized_rms_error(&x, &st.tucker.reconstruct());
        let ho_err = normalized_rms_error(&x, &ho.tucker.reconstruct());
        assert!(ho_err <= st_err + 1e-10);
    }

    #[test]
    fn fit_matches_reconstruction_error() {
        // ‖X‖² − ‖G‖² == ‖X − G × {U}‖² for orthonormal factors.
        let mut rng = StdRng::seed_from_u64(93);
        let x = low_rank_plus_noise(&mut rng, &[9, 8, 7], &[3, 3, 3], 0.4);
        let result = hooi(&x, &HooiOptions::with_ranks(vec![3, 3, 3], 3));
        let rec = result.tucker.reconstruct();
        let direct = x.sub(&rec).norm_sq();
        let fit = *result.fit_history.last().unwrap();
        assert!((direct - fit).abs() < 1e-8 * x.norm_sq());
    }

    #[test]
    fn zero_iterations_allowed() {
        let mut rng = StdRng::seed_from_u64(94);
        let x = random_tensor(&mut rng, &[6, 6, 6]);
        let result = hooi(&x, &HooiOptions::with_ranks(vec![2, 2, 2], 0));
        assert_eq!(result.iterations, 0);
        assert_eq!(result.fit_history.len(), 1);
        // Result equals the ST-HOSVD initialization.
        let st = st_hosvd(&x, &SthosvdOptions::with_ranks(vec![2, 2, 2]));
        let a = result.tucker.reconstruct();
        let b = st.tucker.reconstruct();
        assert!(normalized_rms_error(&a, &b) < 1e-12);
    }

    #[test]
    fn converges_early_when_fit_stalls() {
        let mut rng = StdRng::seed_from_u64(95);
        let x = low_rank_plus_noise(&mut rng, &[8, 8, 8], &[2, 2, 2], 0.0);
        let result = hooi(&x, &HooiOptions::with_tolerance(1e-10, 50));
        // Exact low-rank data converges immediately; far fewer than 50 sweeps.
        assert!(result.iterations <= 3);
    }

    #[test]
    fn relative_error_estimate_matches_actual() {
        let mut rng = StdRng::seed_from_u64(96);
        let x = low_rank_plus_noise(&mut rng, &[9, 9, 9], &[3, 3, 3], 0.2);
        let result = hooi(&x, &HooiOptions::with_ranks(vec![3, 3, 3], 4));
        let actual = normalized_rms_error(&x, &result.tucker.reconstruct());
        let estimate = result.relative_error_estimate(x.norm_sq());
        assert!((actual - estimate).abs() < 1e-6 * (1.0 + actual));
    }

    #[test]
    fn factors_remain_orthonormal() {
        let mut rng = StdRng::seed_from_u64(97);
        let x = random_tensor(&mut rng, &[8, 7, 6]);
        let result = hooi(&x, &HooiOptions::with_ranks(vec![3, 3, 3], 3));
        assert!(result.tucker.factors_orthonormal(1e-8));
    }
}
