//! Mode-ordering strategies for ST-HOSVD.
//!
//! Alg. 1 may process the tensor modes in any order; the order changes the size
//! of the intermediate tensors and therefore the flop and communication counts
//! (Sec. VI-A, Fig. 8b). This module implements the orderings discussed in the
//! paper: the natural order, arbitrary user orders, the greedy flop-minimizing
//! heuristic of Vannieuwenhoven et al., and the greedy compression-ratio
//! heuristic the paper proposes as an alternative.

use serde::{Deserialize, Serialize};

/// A strategy for choosing the ST-HOSVD mode-processing order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModeOrder {
    /// Process modes `0, 1, …, N−1` as written in Alg. 1.
    Natural,
    /// Process modes in an explicit order (must be a permutation of `0..N`).
    Custom(Vec<usize>),
    /// Greedily pick the unprocessed mode that minimizes the flops of the next
    /// Gram + TTM step, given (estimated) target ranks.
    GreedyFlops,
    /// Greedily pick the unprocessed mode with the largest compression ratio
    /// `I_n / R_n` (the alternative heuristic suggested in Sec. VIII-C).
    GreedyRatio,
    /// Process modes from the largest dimension to the smallest.
    LargestFirst,
    /// Process modes from the smallest dimension to the largest.
    SmallestFirst,
}

impl ModeOrder {
    /// Resolves the strategy to an explicit processing order.
    ///
    /// `dims` are the tensor dimensions; `rank_hint` supplies the per-mode
    /// target ranks needed by the greedy strategies (for tolerance-driven runs
    /// callers typically pass the dimensions themselves, which reduces the
    /// greedy strategies to dimension-based orderings).
    ///
    /// # Panics
    /// Panics if a custom order is not a permutation of `0..dims.len()`.
    pub fn resolve(&self, dims: &[usize], rank_hint: &[usize]) -> Vec<usize> {
        let n = dims.len();
        assert_eq!(
            rank_hint.len(),
            n,
            "ModeOrder::resolve: rank hint arity mismatch"
        );
        match self {
            ModeOrder::Natural => (0..n).collect(),
            ModeOrder::Custom(order) => {
                assert_eq!(order.len(), n, "custom order must cover every mode");
                let mut seen = vec![false; n];
                for &m in order {
                    assert!(m < n, "custom order contains out-of-range mode {m}");
                    assert!(!seen[m], "custom order repeats mode {m}");
                    seen[m] = true;
                }
                order.clone()
            }
            ModeOrder::LargestFirst => {
                let mut idx: Vec<usize> = (0..n).collect();
                idx.sort_by(|&a, &b| dims[b].cmp(&dims[a]).then(a.cmp(&b)));
                idx
            }
            ModeOrder::SmallestFirst => {
                let mut idx: Vec<usize> = (0..n).collect();
                idx.sort_by(|&a, &b| dims[a].cmp(&dims[b]).then(a.cmp(&b)));
                idx
            }
            ModeOrder::GreedyFlops => greedy_order(dims, rank_hint, GreedyCriterion::Flops),
            ModeOrder::GreedyRatio => greedy_order(dims, rank_hint, GreedyCriterion::Ratio),
        }
    }
}

enum GreedyCriterion {
    Flops,
    Ratio,
}

/// Greedy ordering: repeatedly pick the unprocessed mode optimizing the
/// criterion, updating the working dimensions as modes get truncated.
fn greedy_order(dims: &[usize], ranks: &[usize], criterion: GreedyCriterion) -> Vec<usize> {
    let n = dims.len();
    let mut current: Vec<f64> = dims.iter().map(|&d| d as f64).collect();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    while !remaining.is_empty() {
        let total: f64 = current.iter().product();
        let best = remaining
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let score = |m: usize| -> f64 {
                    match criterion {
                        // Flops of processing mode m next: Gram (2·I_m·J) plus
                        // TTM (2·R_m·J), with J the current total size.
                        GreedyCriterion::Flops => {
                            2.0 * current[m] * total + 2.0 * ranks[m] as f64 * total
                        }
                        // Negative compression ratio: larger I_m/R_m first.
                        GreedyCriterion::Ratio => -(current[m] / ranks[m].max(1) as f64),
                    }
                };
                score(a).partial_cmp(&score(b)).unwrap().then(a.cmp(&b))
            })
            .expect("remaining modes is non-empty");
        order.push(best);
        current[best] = ranks[best] as f64;
        remaining.retain(|&m| m != best);
    }
    order
}

/// Enumerates every permutation of `0..n` — used by the Fig. 8b harness to
/// sweep all mode orders of a 4-way tensor (24 permutations, of which the
/// paper plots the 12 distinct-cost ones).
pub fn all_orders(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current: Vec<usize> = (0..n).collect();
    permute(&mut current, 0, &mut out);
    out
}

fn permute(arr: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k == arr.len() {
        out.push(arr.clone());
        return;
    }
    for i in k..arr.len() {
        arr.swap(k, i);
        permute(arr, k + 1, out);
        arr.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn natural_order() {
        let o = ModeOrder::Natural.resolve(&[3, 4, 5], &[1, 1, 1]);
        assert_eq!(o, vec![0, 1, 2]);
    }

    #[test]
    fn custom_order_validated() {
        let o = ModeOrder::Custom(vec![2, 0, 1]).resolve(&[3, 4, 5], &[1, 1, 1]);
        assert_eq!(o, vec![2, 0, 1]);
    }

    #[test]
    #[should_panic]
    fn custom_order_with_repeat_panics() {
        ModeOrder::Custom(vec![0, 0, 1]).resolve(&[3, 4, 5], &[1, 1, 1]);
    }

    #[test]
    #[should_panic]
    fn custom_order_out_of_range_panics() {
        ModeOrder::Custom(vec![0, 1, 3]).resolve(&[3, 4, 5], &[1, 1, 1]);
    }

    #[test]
    fn largest_and_smallest_first() {
        let dims = [10usize, 40, 20];
        assert_eq!(
            ModeOrder::LargestFirst.resolve(&dims, &[1, 1, 1]),
            vec![1, 2, 0]
        );
        assert_eq!(
            ModeOrder::SmallestFirst.resolve(&dims, &[1, 1, 1]),
            vec![0, 2, 1]
        );
    }

    #[test]
    fn greedy_ratio_picks_highest_compression_first() {
        // Paper Fig. 8b setup: 25x250x250x250 → 10x10x100x100. Mode 1 has the
        // largest ratio (25x), so the ratio heuristic starts there.
        let dims = [25usize, 250, 250, 250];
        let ranks = [10usize, 10, 100, 100];
        let order = ModeOrder::GreedyRatio.resolve(&dims, &ranks);
        assert_eq!(order[0], 1);
    }

    #[test]
    fn greedy_flops_picks_cheapest_step_first() {
        // The smallest current dimension gives the cheapest Gram, so the flop
        // heuristic starts with mode 0 in the Fig. 8b configuration.
        let dims = [25usize, 250, 250, 250];
        let ranks = [10usize, 10, 100, 100];
        let order = ModeOrder::GreedyFlops.resolve(&dims, &ranks);
        assert_eq!(order[0], 0);
    }

    #[test]
    fn greedy_orders_are_permutations() {
        let dims = [12usize, 6, 9, 3];
        let ranks = [2usize, 3, 4, 1];
        for strat in [ModeOrder::GreedyFlops, ModeOrder::GreedyRatio] {
            let mut order = strat.resolve(&dims, &ranks);
            order.sort_unstable();
            assert_eq!(order, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn all_orders_count() {
        assert_eq!(all_orders(3).len(), 6);
        assert_eq!(all_orders(4).len(), 24);
        // Each is a permutation.
        for o in all_orders(3) {
            let mut s = o.clone();
            s.sort_unstable();
            assert_eq!(s, vec![0, 1, 2]);
        }
    }
}
