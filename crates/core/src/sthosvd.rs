//! Sequentially-truncated higher-order SVD (ST-HOSVD), Alg. 1 of the paper.
//!
//! For each mode (in a configurable order) the algorithm forms the Gram matrix
//! of the current tensor's unfolding, takes its leading eigenvectors as the
//! factor matrix, and immediately shrinks the tensor by a transposed TTM. The
//! truncation of earlier modes makes later modes cheaper — the property the
//! mode-ordering experiments (Fig. 8b) exploit.

use crate::ordering::ModeOrder;
use crate::rank::{discarded_tail, RankSelection};
use crate::tucker::TuckerTensor;
use crate::validate::{self, CoreError};
use serde::{Deserialize, Serialize};
use tucker_exec::ExecContext;
use tucker_linalg::eig::sym_eig_desc;
use tucker_obs::metrics::Counter;
use tucker_tensor::{gram_ctx, ttm_ctx, DenseTensor, TtmTranspose};

/// Completed in-memory ST-HOSVD decompositions (see `tucker-obs`).
static ST_HOSVD_RUNS: Counter = Counter::new("core.st_hosvd.runs");

/// Options controlling ST-HOSVD.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SthosvdOptions {
    /// How the reduced dimensions are chosen.
    pub rank: RankSelection,
    /// The order in which modes are processed.
    pub order: ModeOrder,
}

impl SthosvdOptions {
    /// Tolerance-driven compression with the natural mode order — the paper's
    /// default configuration.
    pub fn with_tolerance(eps: f64) -> Self {
        SthosvdOptions {
            rank: RankSelection::Tolerance(eps),
            order: ModeOrder::Natural,
        }
    }

    /// Fixed target ranks with the natural mode order (used by the performance
    /// experiments of Sec. VIII).
    pub fn with_ranks(ranks: Vec<usize>) -> Self {
        SthosvdOptions {
            rank: RankSelection::Fixed(ranks),
            order: ModeOrder::Natural,
        }
    }

    /// Replaces the mode-processing order.
    pub fn order(mut self, order: ModeOrder) -> Self {
        self.order = order;
        self
    }
}

/// The result of an ST-HOSVD run.
#[derive(Debug, Clone)]
pub struct SthosvdResult {
    /// The computed decomposition.
    pub tucker: TuckerTensor,
    /// The reduced dimension chosen in each mode (indexed by mode, not by
    /// processing order).
    pub ranks: Vec<usize>,
    /// The descending Gram eigenvalues observed in each mode at the time that
    /// mode was processed (indexed by mode).
    pub mode_eigenvalues: Vec<Vec<f64>>,
    /// The sum of discarded eigenvalues over all modes — the quantity bounded
    /// by `ε²‖X‖²` in eq. (3); its square root over `‖X‖` is an a-priori bound
    /// on the relative reconstruction error.
    pub discarded_energy: f64,
    /// `‖X‖²` of the input tensor.
    pub norm_x_sq: f64,
    /// The order in which modes were processed.
    pub processed_order: Vec<usize>,
}

impl SthosvdResult {
    /// The a-priori bound on the normalized RMS error implied by the discarded
    /// eigenvalues (eq. (3)): `sqrt(Σ discarded) / ‖X‖`.
    pub fn error_bound(&self) -> f64 {
        if self.norm_x_sq <= 0.0 {
            return 0.0;
        }
        (self.discarded_energy.max(0.0) / self.norm_x_sq).sqrt()
    }
}

/// Computes the ST-HOSVD of `x` (Alg. 1) on the global execution context.
///
/// # Panics
/// Panics on structurally invalid input (empty/zero-extent shape, fixed
/// ranks exceeding the mode dims, a non-permutation custom order); use
/// [`try_st_hosvd`] for a [`CoreError`] instead.
pub fn st_hosvd(x: &DenseTensor, opts: &SthosvdOptions) -> SthosvdResult {
    st_hosvd_ctx(x, opts, ExecContext::global())
}

/// [`st_hosvd`] on an explicit execution context: the Gram and TTM kernels of
/// every mode run on the context's share of the process pool. Results are
/// bit-identical for every thread count (see `docs/ARCHITECTURE.md` §4).
///
/// # Panics
/// Panics on structurally invalid input; use [`try_st_hosvd_ctx`] for a
/// [`CoreError`] instead.
pub fn st_hosvd_ctx(x: &DenseTensor, opts: &SthosvdOptions, ctx: &ExecContext) -> SthosvdResult {
    match try_st_hosvd_ctx(x, opts, ctx) {
        Ok(r) => r,
        Err(e) => panic!("st_hosvd: invalid input: {e}"),
    }
}

/// Fallible [`st_hosvd`]: validates the input shape, mode order, and rank
/// selection, returning a [`CoreError`] instead of panicking. On valid input
/// the result is the same, bit for bit.
pub fn try_st_hosvd(x: &DenseTensor, opts: &SthosvdOptions) -> Result<SthosvdResult, CoreError> {
    try_st_hosvd_ctx(x, opts, ExecContext::global())
}

/// Fallible [`st_hosvd_ctx`]; see [`try_st_hosvd`].
pub fn try_st_hosvd_ctx(
    x: &DenseTensor,
    opts: &SthosvdOptions,
    ctx: &ExecContext,
) -> Result<SthosvdResult, CoreError> {
    validate::validate_sthosvd_inputs(x.dims(), opts)?;
    Ok(st_hosvd_unchecked(x, opts, ctx))
}

/// The Alg. 1 kernel itself; inputs have been validated.
fn st_hosvd_unchecked(x: &DenseTensor, opts: &SthosvdOptions, ctx: &ExecContext) -> SthosvdResult {
    let nmodes = x.ndims();
    let _span = tucker_obs::span!("st_hosvd", nmodes = nmodes, threads = ctx.threads());
    ST_HOSVD_RUNS.inc();
    let norm_x_sq = x.norm_sq();

    // Resolve the processing order (greedy strategies consume the shared
    // rank hint: fixed ranks when available, the dimensions otherwise).
    let order = opts
        .order
        .resolve(x.dims(), &validate::rank_hint(&opts.rank, x.dims()));

    let mut y = x.clone();
    let mut factors: Vec<Option<tucker_linalg::Matrix>> = vec![None; nmodes];
    let mut ranks = vec![0usize; nmodes];
    let mut mode_eigenvalues: Vec<Vec<f64>> = vec![Vec::new(); nmodes];
    let mut discarded_energy = 0.0;

    for &n in &order {
        let _mode_span = tucker_obs::span!("st_hosvd.mode", mode = n);
        // Gram matrix of the current tensor's mode-n unfolding.
        let s = gram_ctx(ctx, &y, n);
        let eig = sym_eig_desc(&s);
        let r = opts.rank.select(n, &eig.values, norm_x_sq, nmodes);
        let u = eig.leading_vectors(r);
        discarded_energy += discarded_tail(&eig.values, r);
        mode_eigenvalues[n] = eig.values;
        ranks[n] = r;
        // Shrink the tensor: Y ← Y ×_n U⁽ⁿ⁾ᵀ.
        y = ttm_ctx(ctx, &y, &u, n, TtmTranspose::Transpose);
        factors[n] = Some(u);
    }

    let factors: Vec<tucker_linalg::Matrix> = factors
        .into_iter()
        .map(|f| f.expect("every mode must be processed"))
        .collect();
    let tucker = TuckerTensor::new(y, factors);

    SthosvdResult {
        tucker,
        ranks,
        mode_eigenvalues,
        discarded_energy,
        norm_x_sq,
        processed_order: order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tucker_linalg::Matrix;
    use tucker_tensor::{normalized_rms_error, ttm_chain};

    /// Builds an exactly low-rank tensor: random core × random orthonormal factors.
    fn low_rank_tensor(rng: &mut StdRng, dims: &[usize], ranks: &[usize]) -> DenseTensor {
        let core = DenseTensor::from_fn(ranks, |_| rng.gen_range(-1.0..1.0));
        let factors: Vec<Matrix> = dims
            .iter()
            .zip(ranks.iter())
            .map(|(&d, &r)| {
                let m = Matrix::from_fn(d, r, |_, _| rng.gen_range(-1.0..1.0));
                tucker_linalg::qr::householder_qr(&m).q
            })
            .collect();
        let refs: Vec<&Matrix> = factors.iter().collect();
        ttm_chain(&core, &refs, TtmTranspose::NoTranspose)
    }

    fn random_tensor(rng: &mut StdRng, dims: &[usize]) -> DenseTensor {
        DenseTensor::from_fn(dims, |_| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn exact_recovery_of_low_rank_tensor() {
        // Note: ε cannot be pushed to machine precision with the Gram-matrix
        // approach (the paper's Sec. II-B / IX caveat), so use 1e-6.
        let mut rng = StdRng::seed_from_u64(70);
        let x = low_rank_tensor(&mut rng, &[12, 10, 8], &[3, 4, 2]);
        let result = st_hosvd(&x, &SthosvdOptions::with_tolerance(1e-6));
        assert_eq!(result.ranks, vec![3, 4, 2]);
        let rec = result.tucker.reconstruct();
        assert!(normalized_rms_error(&x, &rec) < 1e-6);
    }

    #[test]
    fn fixed_ranks_are_respected() {
        let mut rng = StdRng::seed_from_u64(71);
        let x = random_tensor(&mut rng, &[10, 9, 8]);
        let result = st_hosvd(&x, &SthosvdOptions::with_ranks(vec![4, 3, 2]));
        assert_eq!(result.ranks, vec![4, 3, 2]);
        assert_eq!(result.tucker.core.dims(), &[4, 3, 2]);
        assert_eq!(result.tucker.factors[0].shape(), (10, 4));
    }

    #[test]
    fn error_bound_holds_for_random_data() {
        // eq. (3): the actual reconstruction error is bounded by the bound
        // derived from discarded eigenvalues, and also by eps itself.
        let mut rng = StdRng::seed_from_u64(72);
        let x = random_tensor(&mut rng, &[12, 11, 10]);
        for eps in [0.5, 0.2, 0.05] {
            let result = st_hosvd(&x, &SthosvdOptions::with_tolerance(eps));
            let rec = result.tucker.reconstruct();
            let err = normalized_rms_error(&x, &rec);
            assert!(
                err <= result.error_bound() + 1e-10,
                "error {err} exceeds bound {}",
                result.error_bound()
            );
            assert!(err <= eps + 1e-10, "error {err} exceeds tolerance {eps}");
        }
    }

    #[test]
    fn tighter_tolerance_gives_larger_ranks() {
        let mut rng = StdRng::seed_from_u64(73);
        let x = random_tensor(&mut rng, &[14, 12, 10]);
        let loose = st_hosvd(&x, &SthosvdOptions::with_tolerance(0.5));
        let tight = st_hosvd(&x, &SthosvdOptions::with_tolerance(0.01));
        for n in 0..3 {
            assert!(tight.ranks[n] >= loose.ranks[n]);
        }
    }

    #[test]
    fn factors_have_orthonormal_columns() {
        let mut rng = StdRng::seed_from_u64(74);
        let x = random_tensor(&mut rng, &[9, 8, 7]);
        let result = st_hosvd(&x, &SthosvdOptions::with_ranks(vec![4, 4, 4]));
        assert!(result.tucker.factors_orthonormal(1e-8));
    }

    #[test]
    fn mode_order_does_not_change_exact_recovery() {
        let mut rng = StdRng::seed_from_u64(75);
        let x = low_rank_tensor(&mut rng, &[10, 8, 9], &[2, 3, 2]);
        for order in [
            ModeOrder::Natural,
            ModeOrder::Custom(vec![2, 0, 1]),
            ModeOrder::LargestFirst,
            ModeOrder::SmallestFirst,
        ] {
            let opts = SthosvdOptions::with_tolerance(1e-6).order(order);
            let result = st_hosvd(&x, &opts);
            let rec = result.tucker.reconstruct();
            assert!(normalized_rms_error(&x, &rec) < 1e-6);
            assert_eq!(result.ranks, vec![2, 3, 2]);
        }
    }

    #[test]
    fn eigenvalues_are_recorded_per_mode() {
        let mut rng = StdRng::seed_from_u64(76);
        let x = random_tensor(&mut rng, &[6, 5, 4]);
        let result = st_hosvd(&x, &SthosvdOptions::with_tolerance(0.1));
        // The first processed mode sees the full tensor: its eigenvalues sum to ‖X‖².
        let first = result.processed_order[0];
        let sum: f64 = result.mode_eigenvalues[first].iter().sum();
        assert!((sum - x.norm_sq()).abs() < 1e-8 * x.norm_sq());
        for n in 0..3 {
            assert_eq!(result.mode_eigenvalues[n].len(), x.dim(n));
        }
    }

    #[test]
    fn core_norm_tracks_captured_energy() {
        // ‖X‖² − ‖G‖² equals the energy discarded across modes (approximately,
        // and exactly bounded by it).
        let mut rng = StdRng::seed_from_u64(77);
        let x = random_tensor(&mut rng, &[8, 8, 8]);
        let result = st_hosvd(&x, &SthosvdOptions::with_tolerance(0.3));
        let lost = x.norm_sq() - result.tucker.core.norm_sq();
        assert!(lost >= -1e-9);
        assert!(lost <= result.discarded_energy + 1e-9 * x.norm_sq());
    }

    #[test]
    fn compression_ratio_improves_with_looser_tolerance() {
        let mut rng = StdRng::seed_from_u64(78);
        // A tensor with decaying spectrum so tolerance actually changes ranks.
        let base = low_rank_tensor(&mut rng, &[16, 14, 12], &[5, 5, 5]);
        let noise = random_tensor(&mut rng, &[16, 14, 12]);
        let mut x = base.clone();
        let scale = 1e-3 * base.norm() / noise.norm();
        for (xi, ni) in x.as_mut_slice().iter_mut().zip(noise.as_slice()) {
            *xi += scale * ni;
        }
        let loose = st_hosvd(&x, &SthosvdOptions::with_tolerance(1e-1));
        let tight = st_hosvd(&x, &SthosvdOptions::with_tolerance(1e-6));
        assert!(
            loose.tucker.compression_ratio(x.dims()) >= tight.tucker.compression_ratio(x.dims())
        );
    }
}
