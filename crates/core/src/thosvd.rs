//! Truncated higher-order SVD (T-HOSVD) — the classical baseline.
//!
//! Unlike ST-HOSVD, the T-HOSVD computes every factor matrix from the Gram
//! matrix of the *original* tensor's unfoldings (no sequential truncation), and
//! only then forms the core. It is never cheaper than ST-HOSVD but its error
//! analysis (De Lathauwer et al.) underlies the rank-selection rule and the
//! error bound eq. (3), which is why the paper uses it as the reference point
//! in Sec. VII-B. It also provides the mode-wise eigenvalue spectra of the
//! original tensor used for the Fig. 6 curves.

use crate::rank::{discarded_tail, RankSelection};
use crate::tucker::TuckerTensor;
use tucker_linalg::eig::sym_eig_desc;
use tucker_linalg::Matrix;
use tucker_tensor::{gram, multi_ttm, DenseTensor, TtmTranspose};

/// Result of a T-HOSVD computation.
#[derive(Debug, Clone)]
pub struct ThosvdResult {
    /// The computed decomposition.
    pub tucker: TuckerTensor,
    /// The chosen reduced dimensions, per mode.
    pub ranks: Vec<usize>,
    /// The descending eigenvalues of the Gram matrix of each mode's unfolding
    /// of the **original** tensor (exactly the spectra plotted in Fig. 6).
    pub mode_eigenvalues: Vec<Vec<f64>>,
    /// Total discarded eigenvalue energy, Σₙ Σ_{i>Rₙ} λ⁽ⁿ⁾ᵢ.
    pub discarded_energy: f64,
    /// `‖X‖²` of the input.
    pub norm_x_sq: f64,
}

impl ThosvdResult {
    /// The a-priori error bound of eq. (3): `‖X − X̃‖ ≤ sqrt(Σ discarded)`,
    /// normalized by `‖X‖`.
    pub fn error_bound(&self) -> f64 {
        if self.norm_x_sq <= 0.0 {
            return 0.0;
        }
        (self.discarded_energy.max(0.0) / self.norm_x_sq).sqrt()
    }
}

/// Computes the T-HOSVD of `x` with the given rank-selection rule.
pub fn t_hosvd(x: &DenseTensor, rank: &RankSelection) -> ThosvdResult {
    let nmodes = x.ndims();
    let norm_x_sq = x.norm_sq();

    let mut factors: Vec<Matrix> = Vec::with_capacity(nmodes);
    let mut ranks = Vec::with_capacity(nmodes);
    let mut mode_eigenvalues = Vec::with_capacity(nmodes);
    let mut discarded_energy = 0.0;

    // Every factor comes from the original tensor.
    for n in 0..nmodes {
        let s = gram(x, n);
        let eig = sym_eig_desc(&s);
        let r = rank.select(n, &eig.values, norm_x_sq, nmodes);
        discarded_energy += discarded_tail(&eig.values, r);
        factors.push(eig.leading_vectors(r));
        ranks.push(r);
        mode_eigenvalues.push(eig.values);
    }

    // Core: G = X ×₁ U⁽¹⁾ᵀ ⋯ ×_N U⁽ᴺ⁾ᵀ.
    let opts: Vec<Option<&Matrix>> = factors.iter().map(Some).collect();
    let order: Vec<usize> = (0..nmodes).collect();
    let core = multi_ttm(x, &opts, TtmTranspose::Transpose, &order);

    ThosvdResult {
        tucker: TuckerTensor::new(core, factors),
        ranks,
        mode_eigenvalues,
        discarded_energy,
        norm_x_sq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sthosvd::{st_hosvd, SthosvdOptions};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tucker_tensor::{normalized_rms_error, ttm_chain};

    fn random_tensor(rng: &mut StdRng, dims: &[usize]) -> DenseTensor {
        DenseTensor::from_fn(dims, |_| rng.gen_range(-1.0..1.0))
    }

    fn low_rank_tensor(rng: &mut StdRng, dims: &[usize], ranks: &[usize]) -> DenseTensor {
        let core = DenseTensor::from_fn(ranks, |_| rng.gen_range(-1.0..1.0));
        let factors: Vec<Matrix> = dims
            .iter()
            .zip(ranks.iter())
            .map(|(&d, &r)| {
                let m = Matrix::from_fn(d, r, |_, _| rng.gen_range(-1.0..1.0));
                tucker_linalg::qr::householder_qr(&m).q
            })
            .collect();
        let refs: Vec<&Matrix> = factors.iter().collect();
        ttm_chain(&core, &refs, TtmTranspose::NoTranspose)
    }

    #[test]
    fn exact_recovery_of_low_rank_tensor() {
        let mut rng = StdRng::seed_from_u64(80);
        let x = low_rank_tensor(&mut rng, &[10, 9, 8], &[3, 2, 4]);
        let result = t_hosvd(&x, &RankSelection::Tolerance(1e-6));
        assert_eq!(result.ranks, vec![3, 2, 4]);
        let rec = result.tucker.reconstruct();
        assert!(normalized_rms_error(&x, &rec) < 1e-6);
    }

    #[test]
    fn error_bound_eq3_holds() {
        let mut rng = StdRng::seed_from_u64(81);
        let x = random_tensor(&mut rng, &[10, 10, 10]);
        for eps in [0.6, 0.3, 0.1] {
            let result = t_hosvd(&x, &RankSelection::Tolerance(eps));
            let rec = result.tucker.reconstruct();
            let err = normalized_rms_error(&x, &rec);
            assert!(err <= result.error_bound() + 1e-10);
            assert!(err <= eps + 1e-10);
        }
    }

    #[test]
    fn sthosvd_error_not_worse_than_thosvd_bound() {
        // The paper (Sec. VII-B) notes the ST-HOSVD error is bounded above by
        // the T-HOSVD bound when using the same ranks.
        let mut rng = StdRng::seed_from_u64(82);
        let x = random_tensor(&mut rng, &[9, 9, 9]);
        let th = t_hosvd(&x, &RankSelection::Fixed(vec![4, 4, 4]));
        let st = st_hosvd(&x, &SthosvdOptions::with_ranks(vec![4, 4, 4]));
        let th_err = normalized_rms_error(&x, &th.tucker.reconstruct());
        let st_err = normalized_rms_error(&x, &st.tucker.reconstruct());
        assert!(st_err <= th.error_bound() + 1e-10);
        // Both are valid approximations of comparable quality.
        assert!(th_err < 1.0 && st_err < 1.0);
    }

    #[test]
    fn mode_eigenvalues_sum_to_norm_squared() {
        let mut rng = StdRng::seed_from_u64(83);
        let x = random_tensor(&mut rng, &[7, 6, 5]);
        let result = t_hosvd(&x, &RankSelection::Fixed(vec![7, 6, 5]));
        for ev in &result.mode_eigenvalues {
            let sum: f64 = ev.iter().sum();
            assert!((sum - x.norm_sq()).abs() < 1e-8 * x.norm_sq());
        }
    }

    #[test]
    fn full_rank_thosvd_is_exact() {
        let mut rng = StdRng::seed_from_u64(84);
        let x = random_tensor(&mut rng, &[5, 6, 4]);
        let result = t_hosvd(&x, &RankSelection::Fixed(vec![5, 6, 4]));
        let rec = result.tucker.reconstruct();
        assert!(normalized_rms_error(&x, &rec) < 1e-10);
        assert!((result.error_bound()).abs() < 1e-7);
    }
}
