//! Cross-crate integration tests: the distributed algorithms (Algs. 3–5 and the
//! distributed ST-HOSVD / HOOI built on them) must agree with their sequential
//! counterparts on every processor grid, and their communication volume must
//! match the paper's α-β-γ model.

use parallel_tucker::prelude::*;
use tucker_core::dist::{dist_hooi, dist_reconstruct, parallel_gram, parallel_ttm};
use tucker_core::hooi::{hooi, HooiOptions};
use tucker_distmem::runtime::spmd_with_grid_handle;
use tucker_linalg::Matrix;
use tucker_tensor::{gram, ttm};

fn structured_tensor(dims: &[usize]) -> DenseTensor {
    DenseTensor::from_fn(dims, |idx| {
        let mut v = 1.0;
        for (k, &i) in idx.iter().enumerate() {
            v += ((k + 1) as f64 * 0.17 * i as f64).sin();
        }
        v
    })
}

#[test]
fn distributed_sthosvd_matches_sequential_on_many_grids() {
    let dims = [12usize, 10, 8];
    let x = structured_tensor(&dims);
    let opts = SthosvdOptions::with_ranks(vec![4, 3, 3]);
    let seq = st_hosvd(&x, &opts);
    let seq_rec = seq.tucker.reconstruct();

    for grid_shape in [
        vec![1usize, 1, 1],
        vec![2, 1, 1],
        vec![1, 2, 2],
        vec![2, 2, 2],
        vec![3, 2, 1],
    ] {
        let x2 = x.clone();
        let opts2 = opts.clone();
        let results = spmd_with_grid(ProcGrid::new(&grid_shape), move |comm| {
            let dx = DistTensor::from_global(&comm, &x2);
            let r = dist_st_hosvd(&comm, &dx, &opts2);
            r.tucker.gather_to_root(&comm)
        });
        let dist_rec = results[0].as_ref().unwrap().reconstruct();
        let diff = normalized_rms_error(&seq_rec, &dist_rec);
        assert!(
            diff < 1e-8,
            "grid {grid_shape:?}: distributed reconstruction deviates by {diff}"
        );
    }
}

#[test]
fn distributed_hooi_matches_sequential() {
    let dims = [10usize, 9, 8];
    let x = structured_tensor(&dims);
    let opts = HooiOptions::with_ranks(vec![3, 3, 2], 2);
    let seq_err = normalized_rms_error(&x, &hooi(&x, &opts).tucker.reconstruct());

    let x2 = x.clone();
    let results = spmd_with_grid(ProcGrid::new(&[2, 1, 2]), move |comm| {
        let dx = DistTensor::from_global(&comm, &x2);
        let r = dist_hooi(&comm, &dx, &opts);
        r.tucker.gather_to_root(&comm)
    });
    let dist_err = normalized_rms_error(&x, &results[0].as_ref().unwrap().reconstruct());
    assert!(
        (seq_err - dist_err).abs() < 1e-8 * (1.0 + seq_err),
        "sequential {seq_err} vs distributed {dist_err}"
    );
}

#[test]
fn distributed_reconstruction_round_trip() {
    let dims = [12usize, 8, 10];
    let x = structured_tensor(&dims);
    let x2 = x.clone();
    let results = spmd_with_grid(ProcGrid::new(&[2, 2, 1]), move |comm| {
        let dx = DistTensor::from_global(&comm, &x2);
        let r = dist_st_hosvd(&comm, &dx, &SthosvdOptions::with_tolerance(1e-5));
        let rec = dist_reconstruct(&comm, &r.tucker);
        rec.gather_to_root(&comm)
    });
    let rec = results[0].as_ref().unwrap();
    assert!(normalized_rms_error(&x, rec) <= 1e-5 + 1e-12);
}

#[test]
fn parallel_kernels_match_sequential_on_a_4way_tensor() {
    let dims = [8usize, 6, 6, 4];
    let x = structured_tensor(&dims);
    let v = Matrix::from_fn(dims[1], 3, |i, j| ((i + 2 * j) as f64 * 0.3).cos());

    // Sequential references.
    let seq_ttm = ttm(&x, &v, 1, TtmTranspose::Transpose);
    let seq_gram = gram(&x, 2);

    let x2 = x.clone();
    let results = spmd_with_grid(ProcGrid::new(&[2, 1, 2, 1]), move |comm| {
        let dx = DistTensor::from_global(&comm, &x2);
        let z = parallel_ttm(&comm, &dx, &v, 1, TtmTranspose::Transpose);
        let s_block = parallel_gram(&comm, &dx, 2);
        (z.gather_to_root(&comm), dx.ranges()[2], s_block)
    });

    // TTM result.
    let gathered = results[0].0.as_ref().unwrap();
    assert!(normalized_rms_error(&seq_ttm, gathered) < 1e-12);

    // Gram result: assemble row blocks.
    let n2 = dims[2];
    let mut assembled = Matrix::zeros(n2, n2);
    for (_, (off, len), block) in &results {
        for r in 0..*len {
            assembled.row_mut(off + r).copy_from_slice(block.row(r));
        }
    }
    for i in 0..n2 {
        for j in 0..n2 {
            assert!((assembled.get(i, j) - seq_gram.get(i, j)).abs() < 1e-9);
        }
    }
}

#[test]
fn communication_volume_tracks_cost_model() {
    // Measure the words moved by a parallel Gram and compare against the
    // α-β-γ model's bandwidth term. The model counts critical-path words per
    // rank; the measured aggregate divided by P should be within a small
    // constant factor (collective implementations differ slightly).
    let dims = [16usize, 12, 8];
    let grid_shape = [2usize, 2, 2];
    let mode = 0;
    let x = structured_tensor(&dims);

    let handle = spmd_with_grid_handle(ProcGrid::new(&grid_shape), move |comm| {
        let dx = DistTensor::from_global(&comm, &x);
        let _ = parallel_gram(&comm, &dx, mode);
    });
    let measured_words_per_rank =
        handle.total_stats().words_sent as f64 / handle.stats.len() as f64;

    let model = CostModel::new(ProcGrid::new(&grid_shape), MachineParams::edison_like());
    let predicted = model.gram(&dims, mode).words;

    assert!(
        measured_words_per_rank <= 4.0 * predicted + 64.0,
        "measured {measured_words_per_rank} words/rank far exceeds predicted {predicted}"
    );
    assert!(
        measured_words_per_rank >= 0.1 * predicted,
        "measured {measured_words_per_rank} words/rank suspiciously below predicted {predicted}"
    );
}

#[test]
fn ttm_communication_volume_matches_cost_model() {
    // The mode-aware reduce-scatter in `parallel_ttm` must move exactly the
    // β volume `(P_n − 1)·Ĵ_n·K/P` that `CostModel::ttm` (Alg. 3) charges per
    // rank — not the 2× volume of an all-reduce. Dimensions and grid are
    // chosen so every block divides evenly and the match is exact.
    let dims = [16usize, 12, 8];
    let grid_shape = [2usize, 2, 2];
    let mode = 0;
    let k = 8usize;
    let x = structured_tensor(&dims);
    let v = Matrix::from_fn(dims[mode], k, |i, j| ((i + 3 * j) as f64 * 0.2).sin());

    let handle = spmd_with_grid_handle(ProcGrid::new(&grid_shape), move |comm| {
        let dx = DistTensor::from_global(&comm, &x);
        let _ = parallel_ttm(&comm, &dx, &v, mode, TtmTranspose::Transpose);
    });
    let measured = handle.total_stats().words_sent as f64 / handle.stats.len() as f64;

    let model = CostModel::new(ProcGrid::new(&grid_shape), MachineParams::edison_like());
    let predicted = model.ttm(&dims, mode, k).words;
    assert!(
        (measured - predicted).abs() < 1e-9,
        "measured {measured} words/rank, model predicts {predicted}"
    );

    // Uneven blocks (P_n does not divide K or I_n): the volume still tracks
    // the model to within rounding, and stays well below the all-reduce's 2×.
    let dims = [9usize, 6, 4];
    let k = 5usize;
    let x = structured_tensor(&dims);
    let v = Matrix::from_fn(dims[mode], k, |i, j| ((2 * i + j) as f64 * 0.15).cos());
    let handle = spmd_with_grid_handle(ProcGrid::new(&grid_shape), move |comm| {
        let dx = DistTensor::from_global(&comm, &x);
        let _ = parallel_ttm(&comm, &dx, &v, mode, TtmTranspose::Transpose);
    });
    let measured = handle.total_stats().words_sent as f64 / handle.stats.len() as f64;
    let predicted = model.ttm(&dims, mode, k).words;
    assert!(
        measured <= 1.35 * predicted && measured >= 0.65 * predicted,
        "uneven blocks: measured {measured} words/rank vs predicted {predicted}"
    );
}

#[test]
fn single_rank_distributed_run_is_exactly_sequential() {
    let dims = [9usize, 8, 7];
    let x = structured_tensor(&dims);
    let opts = SthosvdOptions::with_ranks(vec![3, 3, 3]);
    let seq = st_hosvd(&x, &opts);

    let x2 = x.clone();
    let opts2 = opts.clone();
    let results = spmd_with_grid(ProcGrid::new(&[1, 1, 1]), move |comm| {
        let dx = DistTensor::from_global(&comm, &x2);
        let r = dist_st_hosvd(&comm, &dx, &opts2);
        (r.ranks.clone(), r.tucker.gather_to_root(&comm))
    });
    let (ranks, gathered) = &results[0];
    assert_eq!(*ranks, seq.ranks);
    // On a single rank the arithmetic is performed in the same order, so the
    // cores agree to machine precision.
    let diff = normalized_rms_error(&seq.tucker.core, &gathered.as_ref().unwrap().core);
    assert!(diff < 1e-13);
}

/// The env-selected transport (`TUCKER_TRANSPORT` / `TUCKER_RANKS` — the
/// knobs CI's TCP re-runs of this suite turn) must preserve the
/// sequential-equivalence contract for the iterative HOOI too: real spawned
/// processes have to land on the same fit as the in-process reference.
#[test]
fn env_transport_distributed_hooi_matches_sequential() {
    use tucker_net::{
        env_ranks, spmd_transport, test_exec_args, transport_from_env, TransportKind,
    };

    let kind = transport_from_env();
    let p = env_ranks();
    let grid = match p {
        1 => vec![1usize, 1, 1],
        2 => vec![2, 1, 1],
        4 => vec![2, 2, 1],
        8 => vec![2, 2, 2],
        other => vec![other, 1, 1],
    };
    let dims = [10usize, 9, 8];
    let x = structured_tensor(&dims);
    let opts = HooiOptions::with_ranks(vec![3, 3, 2], 2);
    let seq_err = normalized_rms_error(&x, &hooi(&x, &opts).tucker.reconstruct());

    let x2 = x.clone();
    let exec = test_exec_args("env_transport_distributed_hooi_matches_sequential");
    let handle = spmd_transport(
        kind,
        "hooi_env",
        ProcGrid::new(&grid),
        &exec,
        move |comm: Communicator| -> Vec<f64> {
            let dx = DistTensor::from_global(&comm, &x2);
            let r = dist_hooi(&comm, &dx, &opts);
            match r.tucker.gather_to_root(&comm) {
                Some(t) => t.reconstruct().as_slice().to_vec(),
                None => vec![],
            }
        },
    );
    let rec = DenseTensor::from_vec(&dims, handle.results[0].clone());
    let dist_err = normalized_rms_error(&x, &rec);
    assert!(
        (seq_err - dist_err).abs() < 1e-8 * (1.0 + seq_err),
        "{} backend: sequential fit {seq_err} vs distributed {dist_err}",
        kind.label()
    );
    if matches!(kind, TransportKind::Tcp) && p > 1 {
        let wire: u64 = handle.stats.iter().map(|s| s.wire_bytes_sent).sum();
        assert!(wire > 0, "a tcp run must move real bytes on the wire");
    }
}
