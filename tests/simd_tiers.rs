//! Cross-`TUCKER_SIMD` bit- and byte-identity at the pipeline level (ISSUE 8).
//!
//! The microkernel determinism contract pins every GEMM/SYRK output element
//! to one ascending-order running sum with no FMA, on every SIMD tier — so
//! not just the kernels but the entire compression pipeline must produce
//! identical bits whichever tier executes it, and `.tkr` artifacts written
//! under different tiers (and thread counts) must be **byte**-identical.
//! These tests force each supported tier in-process ([`force_tier`]) and
//! check exactly that; CI additionally re-runs whole suites under
//! `TUCKER_SIMD=scalar` and `TUCKER_SIMD=auto` from the environment.
//!
//! Tier forcing is process-global, so tests in this binary serialize on one
//! mutex and restore the detected tier before releasing it.

use std::sync::Mutex;
use tucker_core::st_hosvd_ctx;
use tucker_core::sthosvd::SthosvdOptions;
use tucker_exec::ExecContext;
use tucker_linalg::blocking::{force_blocking, Blocking};
use tucker_linalg::simd::{detected_tier, force_tier, supported_tiers, SimdTier};
use tucker_store::{write_tucker_ctx, Codec, StoreOptions};
use tucker_tensor::{gram_ctx, DenseTensor};

static TIER_LOCK: Mutex<()> = Mutex::new(());

fn tier_guard() -> std::sync::MutexGuard<'static, ()> {
    TIER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Large enough that GEMM/SYRK leave the direct-path and small-problem
/// fallbacks and actually exercise the packed tile grid.
fn test_tensor() -> DenseTensor {
    DenseTensor::from_fn(&[40, 36, 34], |idx| {
        let mut v = 0.3;
        for (k, &i) in idx.iter().enumerate() {
            v += ((k + 1) as f64 * 0.11 * i as f64).sin();
        }
        v
    })
}

#[test]
fn pipelines_are_bit_identical_across_simd_tiers() {
    let _g = tier_guard();
    let x = test_tensor();
    let opts = SthosvdOptions::with_ranks(vec![9, 8, 7]);

    assert!(force_tier(SimdTier::Scalar));
    let ctx1 = ExecContext::new(1);
    let baseline = st_hosvd_ctx(&x, &opts, &ctx1);
    let baseline_gram = gram_ctx(&ctx1, &x, 0);
    let baseline_rec = baseline.tucker.reconstruct_ctx(&ctx1);

    for tier in supported_tiers() {
        assert!(force_tier(tier), "cannot force supported tier");
        for threads in [1usize, 4, 32] {
            let ctx = ExecContext::new(threads);
            let r = st_hosvd_ctx(&x, &opts, &ctx);
            assert_eq!(
                r.tucker.core.as_slice(),
                baseline.tucker.core.as_slice(),
                "core diverged: tier {} threads {threads}",
                tier.name()
            );
            for (a, b) in r.tucker.factors.iter().zip(baseline.tucker.factors.iter()) {
                assert_eq!(
                    a.as_slice(),
                    b.as_slice(),
                    "factor diverged: tier {} threads {threads}",
                    tier.name()
                );
            }
            let g = gram_ctx(&ctx, &x, 0);
            assert_eq!(
                g.as_slice(),
                baseline_gram.as_slice(),
                "gram diverged: tier {} threads {threads}",
                tier.name()
            );
            let rec = r.tucker.reconstruct_ctx(&ctx);
            assert_eq!(
                rec.as_slice(),
                baseline_rec.as_slice(),
                "reconstruction diverged: tier {} threads {threads}",
                tier.name()
            );
        }
    }
    force_tier(detected_tier());
}

#[test]
fn artifacts_are_byte_identical_across_simd_tiers() {
    let _g = tier_guard();
    let x = test_tensor();
    let eps = 1e-3;
    let sth = SthosvdOptions::with_tolerance(eps);
    let pid = std::process::id();
    let tmp = |tag: &str| std::env::temp_dir().join(format!("simd_tiers_{pid}_{tag}.tkr"));

    assert!(force_tier(SimdTier::Scalar));
    let ctx1 = ExecContext::new(1);
    let baseline_path = tmp("scalar_t1");
    let baseline = st_hosvd_ctx(&x, &sth, &ctx1);
    write_tucker_ctx(
        &baseline_path,
        &baseline.tucker,
        &StoreOptions::new(Codec::F64, eps),
        &ctx1,
    )
    .unwrap();
    let baseline_bytes = std::fs::read(&baseline_path).unwrap();
    std::fs::remove_file(&baseline_path).ok();

    for tier in supported_tiers() {
        assert!(force_tier(tier), "cannot force supported tier");
        for threads in [1usize, 4] {
            let ctx = ExecContext::new(threads);
            let path = tmp(&format!("{}_t{threads}", tier.name()));
            let r = st_hosvd_ctx(&x, &sth, &ctx);
            write_tucker_ctx(&path, &r.tucker, &StoreOptions::new(Codec::F64, eps), &ctx).unwrap();
            let bytes = std::fs::read(&path).unwrap();
            std::fs::remove_file(&path).ok();
            assert_eq!(
                bytes,
                baseline_bytes,
                "artifact bytes diverged: tier {} threads {threads}",
                tier.name()
            );
        }
    }
    force_tier(detected_tier());
}

/// `MC/KC/NC` only schedule the packed tile grid — a `TUCKER_BLOCK` override
/// (here forced in-process) must leave `.tkr` artifact bytes untouched.
#[test]
fn artifacts_are_byte_identical_across_blocking_overrides() {
    let _g = tier_guard();
    let x = test_tensor();
    let eps = 1e-3;
    let sth = SthosvdOptions::with_tolerance(eps);
    let pid = std::process::id();
    let tmp = |tag: &str| std::env::temp_dir().join(format!("simd_tiers_{pid}_blk_{tag}.tkr"));

    let write = |tag: &str, threads: usize| -> Vec<u8> {
        let ctx = ExecContext::new(threads);
        let path = tmp(tag);
        let r = st_hosvd_ctx(&x, &sth, &ctx);
        write_tucker_ctx(&path, &r.tucker, &StoreOptions::new(Codec::F64, eps), &ctx).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        bytes
    };

    let baseline_bytes = write("default", 1);
    let shrunken = Blocking {
        mc: 16,
        kc: 16,
        nc: 16,
    };
    let prev = force_blocking(shrunken);
    for threads in [1usize, 4] {
        let bytes = write(&format!("shrunken_t{threads}"), threads);
        assert_eq!(
            bytes, baseline_bytes,
            "artifact bytes diverged under shrunken blocking, threads {threads}"
        );
    }
    force_blocking(prev);
}
