//! Multi-process transport tests: the `tucker-net` TCP backend must be a
//! drop-in, *bit-identical* replacement for the in-process backend.
//!
//! Every `#[test]` here that uses [`TransportKind::Tcp`] really spawns
//! worker processes: the launcher re-execs this very test binary with
//! `[test_name, "--exact"]` plus `TUCKER_NET_*` env vars, so each worker
//! runs exactly this test up to the same `spmd_transport` call and joins the
//! socket mesh as its assigned rank. Assertions therefore run in *every*
//! process — a worker that disagrees exits non-zero and fails the region.
//!
//! The capstones mirror the repo's determinism contract (ARCHITECTURE §10):
//! the same grid must produce bit-identical factor/core data and
//! byte-identical `.tkr` artifacts whether ranks are threads or processes.

use parallel_tucker::prelude::*;
use tucker_distmem::collectives::all_reduce;
use tucker_distmem::subcomm::SubCommunicator;
use tucker_net::{NetError, SpmdHandle};

fn structured_tensor(dims: &[usize]) -> DenseTensor {
    DenseTensor::from_fn(dims, |idx| {
        let mut v = 1.0;
        for (k, &i) in idx.iter().enumerate() {
            v += ((k + 1) as f64 * 0.17 * i as f64).sin();
        }
        v
    })
}

/// Flattens a gathered Tucker decomposition to exact bit-comparable words.
fn tucker_bits(t: &tucker_core::tucker::TuckerTensor) -> Vec<f64> {
    let mut out: Vec<f64> = t.core.as_slice().to_vec();
    for f in &t.factors {
        out.extend_from_slice(f.as_slice());
    }
    out
}

fn assert_same_bits(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bit divergence at word {i}: {x:e} vs {y:e}"
        );
    }
}

#[test]
fn tcp_allreduce_matches_inproc_bitwise() {
    let grid = [2usize];
    let f = |comm: Communicator| -> Vec<f64> {
        let data: Vec<f64> = (0..64)
            .map(|i| ((comm.rank() + 1) as f64 * 0.37 * i as f64).sin())
            .collect();
        let g = SubCommunicator::world_group(&comm);
        all_reduce(&g, &data)
    };
    let inproc: SpmdHandle<Vec<f64>> = spmd_transport(
        TransportKind::InProc,
        "allreduce",
        ProcGrid::new(&grid),
        &test_exec_args("tcp_allreduce_matches_inproc_bitwise"),
        f,
    );
    let tcp: SpmdHandle<Vec<f64>> = spmd_transport(
        TransportKind::Tcp,
        "allreduce",
        ProcGrid::new(&grid),
        &test_exec_args("tcp_allreduce_matches_inproc_bitwise"),
        f,
    );
    for r in 0..2 {
        assert_same_bits(&inproc.results[r], &tcp.results[r], "all_reduce");
        // Logical volume (messages/words) is transport-invariant...
        assert_eq!(inproc.stats[r].words_sent, tcp.stats[r].words_sent);
        assert_eq!(inproc.stats[r].messages_sent, tcp.stats[r].messages_sent);
        // ...while wire bytes exist only where real sockets do.
        assert_eq!(inproc.stats[r].wire_bytes_sent, 0);
        assert!(tcp.stats[r].wire_bytes_sent > 0, "rank {r} sent no bytes?");
    }
}

#[test]
fn tcp_transport_kind_is_visible_to_ranks() {
    let h: SpmdHandle<Vec<f64>> = spmd_transport(
        TransportKind::Tcp,
        "kind-check",
        ProcGrid::new(&[2]),
        &test_exec_args("tcp_transport_kind_is_visible_to_ranks"),
        |comm: Communicator| -> Vec<f64> {
            assert_eq!(comm.transport_kind(), "tcp");
            vec![comm.rank() as f64]
        },
    );
    assert_eq!(h.results, vec![vec![0.0], vec![1.0]]);
}

#[test]
fn tcp_wire_bytes_are_exact_per_frame() {
    // One 37-word message rank 0 → rank 1, then one barrier. Every frame is
    // 5 bytes of framing + an 8-byte region stamp + an 8-byte count/seq, so:
    //   rank 0 sends MSG (21 + 8·37) and RELEASE (21)   = 338
    //   rank 1 sends BARRIER (21)                        = 21
    // and each side receives exactly what the other sent. The satellite
    // contract: framing overhead is *in* the counters, volumes stay exact.
    let words = 37usize;
    let h: SpmdHandle<Vec<f64>> = spmd_transport(
        TransportKind::Tcp,
        "byte-audit",
        ProcGrid::new(&[2]),
        &test_exec_args("tcp_wire_bytes_are_exact_per_frame"),
        move |comm: Communicator| -> Vec<f64> {
            let out = if comm.rank() == 0 {
                comm.send(1, &vec![0.5; words]);
                vec![]
            } else {
                comm.recv(0)
            };
            comm.barrier();
            out
        },
    );
    let msg = 21 + 8 * words as u64;
    assert_eq!(h.stats[0].wire_bytes_sent, msg + 21);
    assert_eq!(h.stats[0].wire_bytes_received, 21);
    assert_eq!(h.stats[1].wire_bytes_sent, 21);
    assert_eq!(h.stats[1].wire_bytes_received, msg + 21);
}

#[test]
fn tcp_dist_sthosvd_matches_inproc_bitwise() {
    let dims = [12usize, 10, 8];
    let x = structured_tensor(&dims);
    let opts = SthosvdOptions::with_ranks(vec![4, 3, 3]);
    let grid = [2usize, 1, 1];
    let exec = test_exec_args("tcp_dist_sthosvd_matches_inproc_bitwise");
    let f = {
        let x = x.clone();
        let opts = opts.clone();
        move |comm: Communicator| -> Vec<f64> {
            let dx = DistTensor::from_global(&comm, &x);
            let r = dist_st_hosvd(&comm, &dx, &opts);
            match r.tucker.gather_to_root(&comm) {
                Some(t) => tucker_bits(&t),
                None => vec![],
            }
        }
    };
    let inproc: SpmdHandle<Vec<f64>> = spmd_transport(
        TransportKind::InProc,
        "dist-sthosvd",
        ProcGrid::new(&grid),
        &exec,
        f.clone(),
    );
    let tcp: SpmdHandle<Vec<f64>> = spmd_transport(
        TransportKind::Tcp,
        "dist-sthosvd",
        ProcGrid::new(&grid),
        &exec,
        f,
    );
    assert!(!inproc.results[0].is_empty());
    assert_same_bits(&inproc.results[0], &tcp.results[0], "dist_st_hosvd");
    // Same algorithm, same grid — identical logical communication volume.
    for r in 0..2 {
        assert_eq!(inproc.stats[r].words_sent, tcp.stats[r].words_sent);
    }
}

#[test]
fn tcp_artifact_bytes_identical_on_2x2_grid() {
    // The PR's acceptance capstone: dist_st_hosvd on a 2×2 process grid must
    // produce a byte-identical `.tkr` whether the four ranks are threads or
    // spawned processes. Rank 0 writes the artifact and ships its raw bytes
    // through the result table, so every *process* (launcher and workers
    // alike) performs the comparison against its own local in-process run.
    let dims = [12usize, 10, 8];
    let x = structured_tensor(&dims);
    let opts = SthosvdOptions::with_ranks(vec![4, 3, 3]);
    let grid = [2usize, 2, 1];
    let exec = test_exec_args("tcp_artifact_bytes_identical_on_2x2_grid");
    let make = |tag: &'static str| {
        let x = x.clone();
        let opts = opts.clone();
        move |comm: Communicator| -> Vec<u8> {
            let dx = DistTensor::from_global(&comm, &x);
            let r = dist_st_hosvd(&comm, &dx, &opts);
            match r.tucker.gather_to_root(&comm) {
                Some(t) => {
                    let path = std::env::temp_dir()
                        .join(format!("transport_{}_{tag}.tkr", std::process::id()));
                    write_tucker(&path, &t, &StoreOptions::new(Codec::F64, 1e-6))
                        .expect("write .tkr");
                    let bytes = std::fs::read(&path).expect("read .tkr back");
                    let _ = std::fs::remove_file(&path);
                    bytes
                }
                None => vec![],
            }
        }
    };
    let inproc: SpmdHandle<Vec<u8>> = spmd_transport(
        TransportKind::InProc,
        "tkr-identity",
        ProcGrid::new(&grid),
        &exec,
        make("inproc"),
    );
    let tcp: SpmdHandle<Vec<u8>> = spmd_transport(
        TransportKind::Tcp,
        "tkr-identity",
        ProcGrid::new(&grid),
        &exec,
        make("tcp"),
    );
    assert!(!inproc.results[0].is_empty(), "root wrote no artifact");
    assert_eq!(
        inproc.results[0], tcp.results[0],
        ".tkr artifact bytes diverge between transports"
    );
}

#[test]
fn tcp_session_is_reused_across_regions() {
    // Three regions in one test: one process fleet, three REGION handshakes.
    let exec = test_exec_args("tcp_session_is_reused_across_regions");
    let mut previous: Option<Vec<f64>> = None;
    for round in 0..3u64 {
        let h: SpmdHandle<Vec<f64>> = spmd_transport(
            TransportKind::Tcp,
            "reuse",
            ProcGrid::new(&[2]),
            &exec,
            move |comm: Communicator| -> Vec<f64> {
                let g = SubCommunicator::world_group(&comm);
                all_reduce(&g, &[(comm.rank() as f64 + 1.0) * (round as f64 + 1.0)])
            },
        );
        let expected = 3.0 * (round as f64 + 1.0);
        assert_eq!(h.results[0], vec![expected]);
        assert_eq!(h.results[1], vec![expected]);
        if let Some(prev) = previous.take() {
            assert_ne!(prev, h.results[0], "rounds should differ");
        }
        previous = Some(h.results[0].clone());
    }
}

#[test]
fn tcp_worker_panic_is_typed_and_poisons_the_session() {
    let exec = test_exec_args("tcp_worker_panic_is_typed_and_poisons_the_session");
    let err = try_spmd_transport(
        TransportKind::Tcp,
        "panic-region",
        ProcGrid::new(&[2]),
        &exec,
        |comm: Communicator| -> Vec<f64> {
            if comm.rank() == 1 {
                panic!("rank 1 exploded deliberately");
            }
            // Rank 0 blocks on the dead rank; the abort must fail it typed.
            comm.recv(1)
        },
    )
    .unwrap_err();
    match &err {
        NetError::RankPanicked { rank, message } => {
            assert_eq!(*rank, 1, "root cause misattributed: {err}");
            assert!(
                message.contains("exploded deliberately"),
                "message lost: {message}"
            );
        }
        other => panic!("expected RankPanicked, got {other:?}"),
    }
    // The mesh is unknowable now: the next region must refuse immediately.
    let t0 = std::time::Instant::now();
    let err2 = try_spmd_transport(
        TransportKind::Tcp,
        "after-poison",
        ProcGrid::new(&[2]),
        &exec,
        |_comm: Communicator| -> Vec<f64> { vec![] },
    )
    .unwrap_err();
    assert!(
        matches!(err2, NetError::SessionPoisoned { .. }),
        "expected SessionPoisoned, got {err2:?}"
    );
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(5),
        "poisoned session should fail fast"
    );
}

#[test]
fn env_selected_transport_runs_distributed_equivalence() {
    // The gate ci.sh re-runs with TUCKER_TRANSPORT=tcp and TUCKER_RANKS=2/4:
    // the backend and process count come from the environment, the
    // assertions don't change. Under the default (inproc) env this still
    // verifies the sequential/distributed agreement.
    let kind = transport_from_env();
    let p = if kind == TransportKind::Tcp {
        env_ranks()
    } else {
        4
    };
    let grid: Vec<usize> = match p {
        1 => vec![1, 1, 1],
        2 => vec![2, 1, 1],
        4 => vec![2, 2, 1],
        8 => vec![2, 2, 2],
        other => vec![other, 1, 1],
    };
    let dims = [12usize, 10, 8];
    let x = structured_tensor(&dims);
    let opts = SthosvdOptions::with_ranks(vec![4, 3, 3]);
    let seq_rec = st_hosvd(&x, &opts).tucker.reconstruct();
    let exec = test_exec_args("env_selected_transport_runs_distributed_equivalence");
    let h: SpmdHandle<Vec<f64>> =
        spmd_transport(kind, "env-equivalence", ProcGrid::new(&grid), &exec, {
            let x = x.clone();
            let opts = opts.clone();
            move |comm: Communicator| -> Vec<f64> {
                let dx = DistTensor::from_global(&comm, &x);
                let r = dist_st_hosvd(&comm, &dx, &opts);
                match r.tucker.gather_to_root(&comm) {
                    Some(t) => t.reconstruct().as_slice().to_vec(),
                    None => vec![],
                }
            }
        });
    let dist_rec = DenseTensor::from_vec(&dims, h.results[0].clone());
    let diff = normalized_rms_error(&seq_rec, &dist_rec);
    assert!(
        diff < 1e-8,
        "{} x {p}: distributed reconstruction deviates by {diff}",
        kind.label()
    );
}
