//! Workspace-level observability contracts (ISSUE 7, `docs/ARCHITECTURE.md` §9).
//!
//! Two promises the `tucker-obs` layer makes to every other crate are pinned
//! here, where the full pipeline is available:
//!
//! * **Zero cost when off** — with metrics disabled, recording calls touch
//!   no heap at all (measured with a counting global allocator), and with
//!   metrics enabled the steady state after registration is allocation-free
//!   too (pure atomics).
//! * **Bit-identity** — instrumentation observes, it never participates:
//!   compressing and querying with span tracing (and metrics) enabled
//!   produces byte-identical artifacts and bit-identical query answers to a
//!   fully dark run.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Mutex;
use tucker_api::{Compressor, Open, TensorQuery};
use tucker_obs::metrics::{self, Counter, Gauge, Histogram};
use tucker_obs::trace;
use tucker_tensor::DenseTensor;

/// Counts heap allocations made by the *current thread* (thread-local so
/// pool workers and parallel sibling tests cannot pollute a measurement).
struct CountingAlloc;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn note_alloc() {
    // try_with: never panic inside the allocator (TLS teardown).
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Serializes the tests that flip the process-wide enabled flag or the
/// global trace sink (tests in one binary run on parallel threads).
fn obs_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn disabled_metrics_allocate_nothing_and_register_nothing() {
    let _g = obs_guard();
    // Fresh names: these instruments must never have been registered.
    static C: Counter = Counter::new("test.obs.dark_counter");
    static G: Gauge = Gauge::new("test.obs.dark_gauge");
    static H: Histogram = Histogram::new("test.obs.dark_hist");

    metrics::set_enabled(false);
    let before = thread_allocs();
    for i in 0..10_000u64 {
        C.add(i);
        G.add(i as i64);
        G.dec();
        H.observe_us(i);
        // Inactive span: one atomic load, no guard state.
        let _s = tucker_obs::span!("test.obs.dark_span", i = i);
    }
    let delta = thread_allocs() - before;
    metrics::set_enabled(true);

    assert_eq!(
        delta, 0,
        "disabled instruments must not touch the heap ({delta} allocations)"
    );
    // Nothing was registered either: the names are absent from exposition.
    let text = metrics::render();
    assert!(
        !text.contains("test.obs.dark_"),
        "disabled instruments must not register:\n{text}"
    );
}

#[test]
fn enabled_metrics_are_allocation_free_after_registration() {
    let _g = obs_guard();
    static C: Counter = Counter::new("test.obs.steady_counter");
    static H: Histogram = Histogram::new("test.obs.steady_hist");

    metrics::set_enabled(true);
    // First touch registers storage (allocates once, by design).
    C.inc();
    H.observe_us(1);

    let before = thread_allocs();
    for i in 0..10_000u64 {
        C.add(2);
        H.observe_us(i % 4096);
    }
    let delta = thread_allocs() - before;
    assert_eq!(
        delta, 0,
        "steady-state recording must be pure atomics ({delta} allocations)"
    );
    assert!(C.value() >= 20_001);
    assert!(H.snapshot().count >= 10_001);
}

/// A deterministic mid-size tensor: large enough to exercise multi-chunk
/// storage and real kernel work, small enough for CI.
fn pipeline_input() -> DenseTensor {
    DenseTensor::from_fn(&[17, 13, 11, 7], |i| {
        let x = i[0] as f64 * 0.37 + i[1] as f64 * 0.11;
        let y = i[2] as f64 * 0.23 - i[3] as f64 * 0.05;
        (x.sin() + 1.3 * y.cos()) * (1.0 + 0.01 * (i[0] * i[3]) as f64)
    })
}

/// Runs compress → write → reopen → query and returns the artifact bytes
/// plus every query answer, so two runs can be compared bit-for-bit.
fn run_pipeline(path: &std::path::Path) -> (Vec<u8>, Vec<f64>) {
    let x = pipeline_input();
    Compressor::new(&x)
        .tolerance(1e-6)
        .write_to(path)
        .unwrap_or_else(|e| panic!("compress/write failed: {e}"));
    let bytes = std::fs::read(path).unwrap_or_else(|e| panic!("read artifact failed: {e}"));

    let reader = Open::lazy()
        .cache_chunks(8)
        .open(path)
        .unwrap_or_else(|e| panic!("open failed: {e}"));
    let mut answers = Vec::new();
    answers.push(
        reader
            .element(&[3, 1, 4, 1])
            .unwrap_or_else(|e| panic!("element failed: {e}")),
    );
    answers.extend(
        reader
            .elements(&[&[0, 0, 0, 0], &[16, 12, 10, 6], &[8, 6, 5, 3]])
            .unwrap_or_else(|e| panic!("elements failed: {e}")),
    );
    let window = reader
        .reconstruct_range(&[(2, 5), (0, 13), (7, 3), (1, 4)])
        .unwrap_or_else(|e| panic!("range failed: {e}"));
    answers.extend_from_slice(window.as_slice());
    let slice = reader
        .reconstruct_slice(2, 6)
        .unwrap_or_else(|e| panic!("slice failed: {e}"));
    answers.extend_from_slice(slice.as_slice());
    (bytes, answers)
}

#[test]
fn tracing_and_metrics_never_change_the_bits() {
    let _g = obs_guard();
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let dark_tkr = dir.join(format!("tucker_obs_bitid_dark_{pid}.tkr"));
    let lit_tkr = dir.join(format!("tucker_obs_bitid_lit_{pid}.tkr"));
    let trace_path = dir.join(format!("tucker_obs_bitid_{pid}.trace"));

    // Dark run: metrics off, no trace sink.
    trace::uninstall();
    metrics::set_enabled(false);
    let (dark_bytes, dark_answers) = run_pipeline(&dark_tkr);

    // Lit run: metrics on and a JSON-lines span sink installed.
    metrics::set_enabled(true);
    trace::install(trace_path.to_str().unwrap_or_default())
        .unwrap_or_else(|e| panic!("cannot install trace sink: {e}"));
    let (lit_bytes, lit_answers) = run_pipeline(&lit_tkr);
    trace::uninstall();

    assert_eq!(
        dark_bytes, lit_bytes,
        "artifact bytes differ between instrumented and dark runs"
    );
    assert_eq!(dark_answers.len(), lit_answers.len());
    for (i, (d, l)) in dark_answers.iter().zip(lit_answers.iter()).enumerate() {
        assert!(
            d.to_bits() == l.to_bits(),
            "query answer {i} differs bitwise: dark {d:?} vs instrumented {l:?}"
        );
    }

    // The lit run must actually have traced something: the compression path
    // opens kernel spans (st_hosvd/ttm/gram) on this thread.
    let trace_text =
        std::fs::read_to_string(&trace_path).unwrap_or_else(|e| panic!("read trace: {e}"));
    assert!(
        trace_text.lines().count() > 0 && trace_text.contains("\"ph\":\"X\""),
        "instrumented run emitted no span events:\n{trace_text}"
    );

    std::fs::remove_file(&dark_tkr).ok();
    std::fs::remove_file(&lit_tkr).ok();
    std::fs::remove_file(&trace_path).ok();
}
