//! Property-based tests (proptest) for the core invariants of the system.
//!
//! Each property is phrased over randomly drawn tensor shapes and contents, so
//! these tests sweep a much wider region of the input space than the unit
//! tests: unfolding index maps, TTM linearity and commutativity, Gram
//! positivity, the ε-guarantee of ST-HOSVD, partial-reconstruction consistency,
//! normalization round-trips, and collective correctness.

use proptest::prelude::*;
use tucker_core::prelude::*;
use tucker_core::rank::select_rank_by_threshold;
use tucker_linalg::Matrix;
use tucker_tensor::layout::{unfold_index, Unfolding};
use tucker_tensor::{
    extract_subtensor, gram, normalized_rms_error, ttm, DenseTensor, SubtensorSpec, TtmTranspose,
};

/// Strategy: a small tensor shape of 2–4 modes with dims in 2..=7.
fn shape_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(2usize..=7, 2..=4)
}

/// Strategy: a tensor with the given shape and values in [-1, 1].
fn tensor_strategy(dims: Vec<usize>) -> impl Strategy<Value = DenseTensor> {
    let len: usize = dims.iter().product();
    prop::collection::vec(-1.0f64..1.0, len)
        .prop_map(move |data| DenseTensor::from_vec(&dims, data))
}

fn arbitrary_tensor() -> impl Strategy<Value = DenseTensor> {
    shape_strategy().prop_flat_map(tensor_strategy)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn unfolding_preserves_every_element(x in arbitrary_tensor(), mode_sel in 0usize..4) {
        let mode = mode_sel % x.ndims();
        let unf = Unfolding::new(x.dims(), mode);
        let m = unf.materialize(&x);
        // Every tensor element appears exactly once at the predicted position.
        for (idx, v) in x.indexed_iter() {
            let (r, c) = unfold_index(x.dims(), mode, &idx);
            prop_assert_eq!(m.get(r, c), v);
        }
        prop_assert_eq!(m.rows() * m.cols(), x.len());
    }

    #[test]
    fn ttm_is_linear_in_the_tensor(x in arbitrary_tensor(), mode_sel in 0usize..4, scale in -2.0f64..2.0) {
        let mode = mode_sel % x.ndims();
        let k = 3usize;
        let v = Matrix::from_fn(k, x.dim(mode), |i, j| ((i * 7 + j * 3) as f64 * 0.1).sin());
        let y1 = ttm(&x, &v, mode, TtmTranspose::NoTranspose);
        let mut xs = x.clone();
        xs.scale(scale);
        let y2 = ttm(&xs, &v, mode, TtmTranspose::NoTranspose);
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            prop_assert!((a * scale - b).abs() < 1e-9);
        }
    }

    #[test]
    fn ttm_in_distinct_modes_commutes(x in arbitrary_tensor()) {
        prop_assume!(x.ndims() >= 2);
        let v0 = Matrix::from_fn(2, x.dim(0), |i, j| ((i + j) as f64 * 0.2).cos());
        let v1 = Matrix::from_fn(2, x.dim(1), |i, j| ((2 * i + j) as f64 * 0.15).sin());
        let a = ttm(&ttm(&x, &v0, 0, TtmTranspose::NoTranspose), &v1, 1, TtmTranspose::NoTranspose);
        let b = ttm(&ttm(&x, &v1, 1, TtmTranspose::NoTranspose), &v0, 0, TtmTranspose::NoTranspose);
        for (p, q) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((p - q).abs() < 1e-10);
        }
    }

    #[test]
    fn gram_is_symmetric_positive_semidefinite(x in arbitrary_tensor(), mode_sel in 0usize..4) {
        let mode = mode_sel % x.ndims();
        let s = gram(&x, mode);
        for i in 0..s.rows() {
            prop_assert!(s.get(i, i) >= -1e-10);
            for j in 0..s.cols() {
                prop_assert!((s.get(i, j) - s.get(j, i)).abs() < 1e-10);
            }
        }
        // Trace equals the squared norm.
        let trace: f64 = (0..s.rows()).map(|i| s.get(i, i)).sum();
        prop_assert!((trace - x.norm_sq()).abs() < 1e-8 * (1.0 + x.norm_sq()));
    }

    #[test]
    fn sthosvd_respects_the_tolerance(x in arbitrary_tensor(), eps_exp in 1u32..4) {
        let eps = 10f64.powi(-(eps_exp as i32));
        let result = st_hosvd(&x, &SthosvdOptions::with_tolerance(eps));
        let rec = result.tucker.reconstruct();
        let err = normalized_rms_error(&x, &rec);
        prop_assert!(err <= eps + 1e-10, "error {} above tolerance {}", err, eps);
        // Factors are orthonormal and ranks never exceed dims.
        prop_assert!(result.tucker.factors_orthonormal(1e-7));
        for (r, d) in result.ranks.iter().zip(x.dims()) {
            prop_assert!(r <= d);
        }
    }

    #[test]
    fn full_rank_decomposition_is_exact(x in arbitrary_tensor()) {
        let ranks = x.dims().to_vec();
        let result = st_hosvd(&x, &SthosvdOptions::with_ranks(ranks));
        let rec = result.tucker.reconstruct();
        prop_assert!(normalized_rms_error(&x, &rec) < 1e-9);
    }

    #[test]
    fn partial_reconstruction_agrees_with_full(x in arbitrary_tensor()) {
        let result = st_hosvd(&x, &SthosvdOptions::with_tolerance(1e-2));
        let full = result.tucker.reconstruct();
        // Take the first half of every mode.
        let spec = SubtensorSpec::from_ranges(
            &x.dims().iter().map(|&d| (0, (d / 2).max(1))).collect::<Vec<_>>(),
        );
        let partial = tucker_core::reconstruct_subtensor(&result.tucker, &spec);
        let expected = extract_subtensor(&full, &spec);
        for (a, b) in partial.as_slice().iter().zip(expected.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn rank_selection_never_discards_more_than_threshold(
        eigenvalues in prop::collection::vec(0.0f64..10.0, 1..20),
        threshold in 0.0f64..5.0,
    ) {
        let mut ev = eigenvalues;
        ev.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let r = select_rank_by_threshold(&ev, threshold);
        prop_assert!(r >= 1 && r <= ev.len());
        let discarded: f64 = ev[r..].iter().sum();
        prop_assert!(discarded <= threshold + 1e-12);
        // Keeping one fewer would either exceed the threshold or hit the floor of 1.
        if r > 1 {
            let one_less: f64 = ev[r - 1..].iter().sum();
            prop_assert!(one_less > threshold);
        }
    }

    #[test]
    fn normalization_round_trip(x in arbitrary_tensor(), mode_sel in 0usize..4) {
        let mode = mode_sel % x.ndims();
        let original = x.clone();
        let mut work = x;
        let norm = tucker_scidata::normalize_per_slice(&mut work, mode);
        norm.invert(&mut work);
        for (a, b) in work.as_slice().iter().zip(original.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn collectives_sum_correctly(p in 1usize..6, len in 1usize..20) {
        let results = tucker_distmem::spmd(p, move |comm| {
            let group = tucker_distmem::SubCommunicator::world_group(&comm);
            let data: Vec<f64> = (0..len).map(|i| (i + comm.rank()) as f64).collect();
            tucker_distmem::collectives::all_reduce(&group, &data)
        });
        for r in &results {
            for (i, &v) in r.iter().enumerate() {
                let expected: f64 = (0..p).map(|rank| (i + rank) as f64).sum();
                prop_assert!((v - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn compression_ratio_formula_is_consistent(
        dims in prop::collection::vec(2usize..30, 2..5),
    ) {
        let ranks: Vec<usize> = dims.iter().map(|&d| (d / 2).max(1)).collect();
        let c = tucker_core::compression_ratio(&dims, &ranks);
        let full: f64 = dims.iter().map(|&d| d as f64).product();
        let stored: f64 = ranks.iter().map(|&r| r as f64).product::<f64>()
            + dims.iter().zip(&ranks).map(|(&d, &r)| (d * r) as f64).sum::<f64>();
        prop_assert!((c - full / stored).abs() < 1e-9 * c.abs());
    }
}
