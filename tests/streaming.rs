//! The out-of-core pipeline's contracts (ISSUE 4 acceptance criteria):
//!
//! * `st_hosvd_streaming` output — factors, core, ranks, eigenvalues,
//!   discarded energy, error bound — is **bit-identical** to `st_hosvd_ctx`
//!   on the same data for every slab width (1, a prime, the full last mode)
//!   and every thread count including oversubscription (the CI runs this
//!   suite under `TUCKER_THREADS=32` as well);
//! * `compress_streaming` produces artifacts **byte-identical** to the
//!   in-memory `write_tucker` pipeline;
//! * every codec round-trips through the lazy `TkrReader` with byte-identical
//!   query answers while decoding no more than the touched chunks and
//!   keeping at most the cache capacity resident;
//! * the scidata slab generators drive the streaming path to the same bits
//!   as compressing their materialized field.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use tucker_core::prelude::*;
use tucker_exec::ExecContext;
use tucker_scidata::CombustionConfig;
use tucker_store::{
    compress_streaming, write_tucker_ctx, Codec, StoreOptions, TkrArtifact, TkrHeader, TkrMetadata,
    TkrReader, TkrWriter,
};
use tucker_tensor::DenseTensor;

static COUNTER: AtomicUsize = AtomicUsize::new(0);

fn temp_tkr(tag: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("streaming_{}_{tag}_{n}.tkr", std::process::id()))
}

/// Strategy: a 2–4-way tensor with deliberately odd, uneven dims (3..=9) so
/// slab and chunk boundaries land mid-block in every kernel.
fn arbitrary_tensor() -> impl Strategy<Value = DenseTensor> {
    prop::collection::vec(3usize..=9, 2..=4).prop_flat_map(|dims| {
        let len: usize = dims.iter().product();
        prop::collection::vec(-1.0f64..1.0, len)
            .prop_map(move |data| DenseTensor::from_vec(&dims, data))
    })
}

fn assert_bit_identical(a: &SthosvdResult, b: &SthosvdResult, what: &str) {
    assert_eq!(a.ranks, b.ranks, "{what}: ranks");
    assert_eq!(a.processed_order, b.processed_order, "{what}: order");
    assert_eq!(a.norm_x_sq.to_bits(), b.norm_x_sq.to_bits(), "{what}: norm");
    assert_eq!(
        a.discarded_energy.to_bits(),
        b.discarded_energy.to_bits(),
        "{what}: discarded energy"
    );
    assert_eq!(
        a.error_bound().to_bits(),
        b.error_bound().to_bits(),
        "{what}: error bound"
    );
    assert_eq!(
        a.mode_eigenvalues, b.mode_eigenvalues,
        "{what}: eigenvalues"
    );
    assert_eq!(
        a.tucker.core.as_slice(),
        b.tucker.core.as_slice(),
        "{what}: core"
    );
    for (n, (fa, fb)) in a
        .tucker
        .factors
        .iter()
        .zip(b.tucker.factors.iter())
        .enumerate()
    {
        assert_eq!(fa.as_slice(), fb.as_slice(), "{what}: factor {n}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The headline acceptance criterion: streaming ≡ in-memory, bitwise,
    /// across slab widths (1, a prime, the full last mode) and thread
    /// counts including oversubscription.
    #[test]
    fn streaming_is_bit_identical_across_slab_widths_and_threads(x in arbitrary_tensor()) {
        let opts = SthosvdOptions::with_tolerance(0.2);
        let baseline = st_hosvd_ctx(&x, &opts, &ExecContext::new(1));
        let last = *x.dims().last().unwrap();
        for width in [1usize, 3, last] {
            for threads in [1usize, 4, 32] {
                let r = st_hosvd_streaming_ctx(
                    &x,
                    &opts,
                    &StreamingOptions::with_slab_width(width),
                    &ExecContext::new(threads),
                );
                assert_bit_identical(&r, &baseline, &format!("width {width}, threads {threads}"));
            }
        }
    }

    /// Fixed-rank selection goes down a different rank-resolution path;
    /// pin it too.
    #[test]
    fn streaming_with_fixed_ranks_is_bit_identical(x in arbitrary_tensor()) {
        let ranks: Vec<usize> = x.dims().iter().map(|&d| d.min(3)).collect();
        let opts = SthosvdOptions::with_ranks(ranks);
        let baseline = st_hosvd_ctx(&x, &opts, &ExecContext::new(1));
        for width in [1usize, 2] {
            let r = st_hosvd_streaming_ctx(
                &x,
                &opts,
                &StreamingOptions::with_slab_width(width),
                &ExecContext::new(4),
            );
            assert_bit_identical(&r, &baseline, &format!("fixed ranks, width {width}"));
        }
    }

    /// Every codec through a lazy-reader round trip: per-slab chunks, a
    /// 2-chunk cache, and byte-identical answers to the eager reader.
    #[test]
    fn every_codec_round_trips_through_the_lazy_reader(x in arbitrary_tensor()) {
        let eps = 1e-2;
        let t = st_hosvd(&x, &SthosvdOptions::with_tolerance(eps)).tucker;
        let last = *t.core.dims().last().unwrap();
        let dims = x.dims();
        let window: Vec<(usize, usize)> =
            dims.iter().map(|&d| (d / 3, (d / 2).max(1))).collect();
        let point: Vec<usize> = dims.iter().map(|&d| d - 1).collect();
        for codec in Codec::all() {
            let path = temp_tkr(codec.name());
            let header = TkrHeader {
                dims: t.original_dims(),
                ranks: t.ranks(),
                eps,
                codec,
                quant_error_bound: 0.0,
                meta: TkrMetadata::default(),
            };
            let mut w = TkrWriter::create(&path, header).unwrap();
            for (n, u) in t.factors.iter().enumerate() {
                w.write_factor(n, u).unwrap();
            }
            for s in 0..last {
                w.write_core_chunk(t.core.last_mode_slab(s, 1)).unwrap();
            }
            w.finish().unwrap();

            let eager = TkrArtifact::open(&path).unwrap();
            let lazy = TkrReader::open_with(&path, 2, &ExecContext::new(4)).unwrap();
            std::fs::remove_file(&path).ok();

            prop_assert_eq!(lazy.chunk_count(), last);
            prop_assert_eq!(lazy.decoded_chunks(), 0);
            // Byte-identical answers on every query shape.
            prop_assert_eq!(
                lazy.reconstruct_range(&window).unwrap(),
                eager.reconstruct_range(&window).unwrap()
            );
            prop_assert_eq!(lazy.reconstruct().unwrap(), eager.reconstruct());
            prop_assert_eq!(
                lazy.reconstruct_slice(0, dims[0] / 2).unwrap(),
                eager.reconstruct_slice(0, dims[0] / 2).unwrap()
            );
            prop_assert_eq!(
                lazy.element(&point).unwrap().to_bits(),
                eager.element(&point).unwrap().to_bits()
            );
            // Never more resident than the cache capacity; a full pass
            // decodes each chunk at most twice across these four queries
            // (range + full + slice + element with a 2-chunk cache evicting
            // in between — each *individual* query decodes ≤ chunk count).
            prop_assert!(lazy.resident_chunks() <= 2);
        }
    }
}

/// Shapes sized to clear every parallel work threshold, forcing the pool
/// paths of Gram/TTM/GEMM through the streaming driver.
#[test]
fn large_streaming_decomposition_is_bit_identical() {
    let x = DenseTensor::from_fn(&[40, 36, 34], |idx| {
        let mut v = 0.3;
        for (k, &i) in idx.iter().enumerate() {
            v += ((k + 1) as f64 * 0.11 * i as f64).sin();
        }
        v
    });
    let opts = SthosvdOptions::with_ranks(vec![9, 8, 7]);
    let baseline = st_hosvd_ctx(&x, &opts, &ExecContext::new(1));
    for threads in [2usize, 8, 32] {
        let ctx = ExecContext::new(threads);
        for width in [1usize, 5, 34] {
            let r =
                st_hosvd_streaming_ctx(&x, &opts, &StreamingOptions::with_slab_width(width), &ctx);
            assert_bit_identical(&r, &baseline, &format!("threads {threads}, width {width}"));
        }
    }
}

/// `compress_streaming` writes byte-for-byte the artifact of the in-memory
/// pipeline, for every codec and thread count.
#[test]
fn streaming_compression_artifact_is_byte_identical_to_in_memory() {
    let cfg = CombustionConfig {
        grid: vec![14, 12],
        n_variables: 6,
        n_timesteps: 11,
        n_kernels: 5,
        species_rank: 3,
        kernel_width: 0.18,
        drift: 0.25,
        noise_level: 2e-4,
        seed: 77,
    };
    let src = cfg.slab_source();
    let x = src.materialize();
    let eps = 1e-3;
    let sth = SthosvdOptions::with_tolerance(eps);
    for codec in Codec::all() {
        for threads in [1usize, 4] {
            let ctx = ExecContext::new(threads);
            let opts = StoreOptions::new(codec, eps);

            let path_mem = temp_tkr(&format!("mem_{}_{threads}", codec.name()));
            let result = st_hosvd_ctx(&x, &sth, &ctx);
            write_tucker_ctx(&path_mem, &result.tucker, &opts, &ctx).unwrap();

            let path_str = temp_tkr(&format!("str_{}_{threads}", codec.name()));
            let (stream_result, _) = compress_streaming(
                &path_str,
                &src,
                &sth,
                &StreamingOptions::with_slab_width(3),
                &opts,
                &ctx,
            )
            .unwrap();

            let bytes_mem = std::fs::read(&path_mem).unwrap();
            let bytes_str = std::fs::read(&path_str).unwrap();
            std::fs::remove_file(&path_mem).ok();
            std::fs::remove_file(&path_str).ok();
            assert_eq!(
                bytes_mem,
                bytes_str,
                "{} at {threads} threads: artifacts differ",
                codec.name()
            );
            assert_eq!(stream_result.ranks, result.ranks);
        }
    }
}

/// A query on the lazy reader decodes each touched chunk exactly once when
/// the cache can hold the working set, and repeat queries are pure hits.
#[test]
fn lazy_reader_decode_accounting() {
    let x = DenseTensor::from_fn(&[9, 8, 13], |idx| {
        ((idx[0] + 2 * idx[1]) as f64 * 0.31).sin() + 0.1 * idx[2] as f64
    });
    let t = st_hosvd(&x, &SthosvdOptions::with_tolerance(1e-3)).tucker;
    let last = *t.core.dims().last().unwrap();
    let path = temp_tkr("accounting");
    let header = TkrHeader {
        dims: t.original_dims(),
        ranks: t.ranks(),
        eps: 1e-3,
        codec: Codec::Q16,
        quant_error_bound: 0.0,
        meta: TkrMetadata::default(),
    };
    let mut w = TkrWriter::create(&path, header).unwrap();
    for (n, u) in t.factors.iter().enumerate() {
        w.write_factor(n, u).unwrap();
    }
    for s in 0..last {
        w.write_core_chunk(t.core.last_mode_slab(s, 1)).unwrap();
    }
    w.finish().unwrap();

    let lazy = TkrReader::open_with(&path, 64, &ExecContext::new(2)).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(lazy.decoded_chunks(), 0, "open decoded core chunks");
    lazy.reconstruct_range(&[(0, 3), (0, 3), (0, 3)]).unwrap();
    assert_eq!(lazy.decoded_chunks(), lazy.chunk_count());
    let hits_before = lazy.cache_hits();
    lazy.element(&[1, 2, 3]).unwrap();
    lazy.reconstruct_slice(1, 4).unwrap();
    assert_eq!(
        lazy.decoded_chunks(),
        lazy.chunk_count(),
        "cached chunks were re-decoded"
    );
    assert!(lazy.cache_hits() >= hits_before + 2 * lazy.chunk_count());
    assert!(lazy.resident_chunks() <= lazy.chunk_count());
}

/// The scidata slab generators drive the streaming path to the same bits as
/// compressing their materialized field in memory — the end-to-end tie-in
/// of the surrogate datasets with the out-of-core pipeline.
#[test]
fn surrogate_slab_source_streams_to_the_in_memory_bits() {
    let cfg = CombustionConfig {
        grid: vec![12, 10],
        n_variables: 5,
        n_timesteps: 8,
        n_kernels: 4,
        species_rank: 2,
        kernel_width: 0.2,
        drift: 0.2,
        noise_level: 1e-4,
        seed: 4242,
    };
    let src = cfg.slab_source();
    let x = src.materialize();
    let opts = SthosvdOptions::with_tolerance(1e-3);
    let ctx = ExecContext::new(4);
    let baseline = st_hosvd_ctx(&x, &opts, &ctx);
    for width in [1usize, 3, 8] {
        let r =
            st_hosvd_streaming_ctx(&src, &opts, &StreamingOptions::with_slab_width(width), &ctx);
        assert_bit_identical(&r, &baseline, &format!("surrogate width {width}"));
    }
}
