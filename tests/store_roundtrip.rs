//! Round-trip fidelity of the `tucker-store` subsystem, property-based and on
//! the paper's surrogate datasets.
//!
//! The contract under test (ISSUE 2 acceptance criteria):
//! * write → read → `reconstruct_subtensor` matches slicing the direct
//!   reconstruction **bit-identically**, for every codec;
//! * the quantization error a codec introduces stays within the artifact's
//!   declared budget (`eps + quant_error_bound`);
//! * a `Tucker` compressed from the SP surrogate round-trips through `.tkr`
//!   with relative error ≤ ε, for the lossless and quantized codecs alike,
//!   and the same holds for `DistTucker` output on a non-trivial grid.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use tucker_core::dist::{dist_st_hosvd, DistTensor};
use tucker_core::prelude::*;
use tucker_distmem::runtime::spmd_with_grid;
use tucker_distmem::ProcGrid;
use tucker_scidata::DatasetPreset;
use tucker_store::{gather_and_write, write_tucker, Codec, StoreOptions, TkrArtifact, TkrMetadata};
use tucker_tensor::{extract_subtensor, relative_error, DenseTensor, SubtensorSpec};

static COUNTER: AtomicUsize = AtomicUsize::new(0);

fn temp_tkr(tag: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "store_roundtrip_{}_{tag}_{n}.tkr",
        std::process::id()
    ))
}

/// Strategy: a random 3-way tensor with dims in 3..=7 and values in [-1, 1].
fn arbitrary_tensor() -> impl Strategy<Value = DenseTensor> {
    prop::collection::vec(3usize..=7, 3..=3).prop_flat_map(|dims| {
        let len: usize = dims.iter().product();
        prop::collection::vec(-1.0f64..1.0, len)
            .prop_map(move |data| DenseTensor::from_vec(&dims, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every codec: the artifact's partial reconstruction is bit-identical
    /// to slicing its full reconstruction, and the extra error the codec
    /// introduced stays within the declared quantization bound.
    #[test]
    fn write_read_reconstruct_subtensor_matches_direct(x in arbitrary_tensor()) {
        let eps = 1e-2;
        let t = st_hosvd(&x, &SthosvdOptions::with_tolerance(eps)).tucker;
        let direct = t.reconstruct();
        let spec = SubtensorSpec::from_ranges(
            &x.dims().iter().map(|&d| (d / 3, (d / 2).max(1))).collect::<Vec<_>>(),
        );
        for codec in Codec::all() {
            let path = temp_tkr(codec.name());
            let report = write_tucker(&path, &t, &StoreOptions::new(codec, eps)).unwrap();
            let artifact = TkrArtifact::open(&path).unwrap();
            std::fs::remove_file(&path).ok();

            // Partial == sliced full reconstruction, bit for bit.
            let full = artifact.reconstruct();
            let window = artifact.reconstruct_subtensor(&spec).unwrap();
            let expected = extract_subtensor(&full, &spec);
            prop_assert_eq!(&window, &expected);

            // The codec's extra error obeys the declared first-order bound
            // (small slack for the higher-order terms the bound drops).
            let extra = relative_error(&direct, &full);
            prop_assert!(
                extra <= 1.05 * report.quant_error_bound + 1e-12,
                "codec {}: extra error {} exceeds declared bound {}",
                codec.name(), extra, report.quant_error_bound
            );
            // And the total stays within the artifact's declared budget.
            let total = relative_error(&x, &full);
            prop_assert!(
                total <= artifact.error_budget() + 1e-10,
                "codec {}: total error {} exceeds budget {}",
                codec.name(), total, artifact.error_budget()
            );
        }
    }

    /// The lossless codec reproduces the decomposition exactly — the artifact
    /// is indistinguishable from the in-memory `TuckerTensor`.
    #[test]
    fn f64_artifact_is_exactly_the_tucker(x in arbitrary_tensor()) {
        let t = st_hosvd(&x, &SthosvdOptions::with_tolerance(1e-3)).tucker;
        let path = temp_tkr("exact");
        write_tucker(&path, &t, &StoreOptions::new(Codec::F64, 1e-3)).unwrap();
        let artifact = TkrArtifact::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(artifact.tucker(), &t);
    }
}

/// ISSUE 2 acceptance criterion: the SP surrogate round-trips through `.tkr`
/// with relative error ≤ ε, and a ~1% window reconstructs bit-identically to
/// slicing the full reconstruction — for the f64 and quantized codecs, and
/// for `DistTucker` output on a non-trivial processor grid.
#[test]
fn sp_surrogate_round_trips_within_eps_for_all_codecs() {
    let eps = 1e-3;
    let ds = DatasetPreset::Sp.generate(1, 2024);
    let result = st_hosvd(&ds.data, &SthosvdOptions::with_tolerance(eps));

    // A ~1% window of the 24×24×24×8×16 field.
    let window_ranges: Vec<(usize, usize)> = vec![(6, 6), (9, 6), (0, 6), (2, 4), (5, 5)];

    for codec in [Codec::F64, Codec::F32, Codec::Q16] {
        let path = temp_tkr(&format!("sp_{}", codec.name()));
        let opts = StoreOptions::new(codec, eps).with_meta(TkrMetadata::for_dataset(&ds));
        write_tucker(&path, &result.tucker, &opts).unwrap();
        let artifact = TkrArtifact::open(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let full = artifact.reconstruct();
        let err = relative_error(&ds.data, &full);
        assert!(
            err <= eps,
            "{}: SP round-trip error {err} above eps {eps}",
            codec.name()
        );

        let window = artifact.reconstruct_range(&window_ranges).unwrap();
        let expected = extract_subtensor(&full, &SubtensorSpec::from_ranges(&window_ranges));
        assert_eq!(
            window,
            expected,
            "{}: 1% window is not bit-identical to slicing the full reconstruction",
            codec.name()
        );
        assert_eq!(artifact.header().meta.dataset, "SP");
    }
}

#[test]
fn sp_dist_tucker_round_trips_on_nontrivial_grid() {
    let eps = 1e-3;
    let ds = DatasetPreset::Sp.generate(1, 2024);
    let data = ds.data.clone();
    let seq = st_hosvd(&ds.data, &SthosvdOptions::with_tolerance(eps));
    let seq_rec = seq.tucker.reconstruct();

    for codec in [Codec::F64, Codec::Q16] {
        let path = temp_tkr(&format!("sp_dist_{}", codec.name()));
        let path2 = path.clone();
        let data2 = data.clone();
        let wrote = spmd_with_grid(ProcGrid::new(&[2, 1, 2, 1, 1]), move |comm| {
            let dx = DistTensor::from_global(&comm, &data2);
            let r = dist_st_hosvd(&comm, &dx, &SthosvdOptions::with_tolerance(eps));
            gather_and_write(&comm, &r.tucker, &path2, &StoreOptions::new(codec, eps))
                .unwrap()
                .is_some()
        });
        assert_eq!(wrote.iter().filter(|&&w| w).count(), 1);

        let artifact = TkrArtifact::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let full = artifact.reconstruct();
        // Within ε of the original, and consistent with the sequential run.
        assert!(
            relative_error(&data, &full) <= eps,
            "{}: distributed artifact misses the ε budget",
            codec.name()
        );
        assert!(relative_error(&seq_rec, &full) < 1e-2);

        // Window query bit-identical to slicing, on the distributed artifact.
        let ranges: Vec<(usize, usize)> = vec![(0, 6), (0, 6), (12, 6), (0, 4), (8, 5)];
        let window = artifact.reconstruct_range(&ranges).unwrap();
        let expected = extract_subtensor(&full, &SubtensorSpec::from_ranges(&ranges));
        assert_eq!(window, expected);
    }
}

#[test]
fn parallel_encode_and_decode_are_byte_and_bit_identical() {
    // ISSUE 3: the store codecs encode/decode core chunks on the shared
    // execution pool. The artifact bytes and the decoded decomposition must
    // not depend on the thread count in any way.
    use tucker_exec::ExecContext;
    use tucker_store::write_tucker_ctx;

    let ds = DatasetPreset::Sp.generate(1, 77);
    let result = st_hosvd(&ds.data, &SthosvdOptions::with_tolerance(1e-3));
    for codec in Codec::all() {
        let seq = ExecContext::new(1);
        let path_seq = temp_tkr(&format!("par_{}_t1", codec.name()));
        write_tucker_ctx(
            &path_seq,
            &result.tucker,
            &StoreOptions::new(codec, 1e-3),
            &seq,
        )
        .unwrap();
        let bytes_seq = std::fs::read(&path_seq).unwrap();
        let baseline = TkrArtifact::open_ctx(&path_seq, &seq).unwrap();
        std::fs::remove_file(&path_seq).ok();

        for threads in [4usize, 16] {
            let ctx = ExecContext::new(threads);
            let path = temp_tkr(&format!("par_{}_t{threads}", codec.name()));
            write_tucker_ctx(&path, &result.tucker, &StoreOptions::new(codec, 1e-3), &ctx).unwrap();
            let bytes = std::fs::read(&path).unwrap();
            assert_eq!(
                bytes,
                bytes_seq,
                "{}: artifact bytes differ at {threads} threads",
                codec.name()
            );
            let artifact = TkrArtifact::open_ctx(&path, &ctx).unwrap();
            std::fs::remove_file(&path).ok();
            assert_eq!(
                artifact.tucker().core.as_slice(),
                baseline.tucker().core.as_slice(),
                "{}: decoded core differs at {threads} threads",
                codec.name()
            );
            for (a, b) in artifact
                .tucker()
                .factors
                .iter()
                .zip(baseline.tucker().factors.iter())
            {
                assert_eq!(a.as_slice(), b.as_slice());
            }
        }
    }
}

/// ISSUE 4 acceptance criterion: the lazy `TkrReader` answers
/// `reconstruct_range`/`element` queries with **byte-identical** results to
/// the eager reader, without ever decoding more than the touched chunks +
/// cache capacity — pinned here on the SP surrogate for every codec.
#[test]
fn lazy_reader_is_byte_identical_to_eager_on_sp_surrogate() {
    let eps = 1e-3;
    let ds = DatasetPreset::Sp.generate(1, 2024);
    let result = st_hosvd(&ds.data, &SthosvdOptions::with_tolerance(eps));
    let window: Vec<(usize, usize)> = vec![(6, 6), (9, 6), (0, 6), (2, 4), (5, 5)];

    for codec in Codec::all() {
        // One chunk per core timestep so the lazy reader has a real chunk
        // directory to manage.
        let path = temp_tkr(&format!("lazy_sp_{}", codec.name()));
        let t = &result.tucker;
        let header = tucker_store::TkrHeader {
            dims: t.original_dims(),
            ranks: t.ranks(),
            eps,
            codec,
            quant_error_bound: 0.0,
            meta: TkrMetadata::for_dataset(&ds),
        };
        let mut w = tucker_store::TkrWriter::create(&path, header).unwrap();
        for (n, u) in t.factors.iter().enumerate() {
            w.write_factor(n, u).unwrap();
        }
        let last = *t.core.dims().last().unwrap();
        for s in 0..last {
            w.write_core_chunk(t.core.last_mode_slab(s, 1)).unwrap();
        }
        w.finish().unwrap();

        let eager = TkrArtifact::open(&path).unwrap();
        let lazy = tucker_store::TkrReader::open_with(&path, 3, tucker_exec::ExecContext::global())
            .unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(lazy.decoded_chunks(), 0, "open must not decode the core");
        assert_eq!(
            lazy.reconstruct_range(&window).unwrap(),
            eager.reconstruct_range(&window).unwrap(),
            "{}: lazy window differs from eager",
            codec.name()
        );
        // A window query touches every chunk exactly once…
        assert_eq!(lazy.decoded_chunks(), lazy.chunk_count());
        // …and never holds more than the cache capacity resident.
        assert!(lazy.resident_chunks() <= 3);

        for idx in [[0usize, 0, 0, 0, 0], [23, 23, 23, 7, 15], [5, 9, 13, 3, 8]] {
            assert_eq!(
                lazy.element(&idx).unwrap().to_bits(),
                eager.element(&idx).unwrap().to_bits(),
                "{}: element {idx:?} differs",
                codec.name()
            );
        }
        assert_eq!(lazy.header().meta.dataset, "SP");
    }
}

#[test]
fn multi_wave_encode_decode_is_byte_identical_and_lossless() {
    // The parallel codec paths proceed in waves of `threads · 4` chunks; the
    // other tests' cores fit in a single chunk, so this one spans 9 chunks
    // (64·64·130 elements at the 65536-element chunk target) to force
    // multiple encode waves and the reader's mid-scan decode flush. Wave
    // boundaries must not leak into the bytes or the decoded values.
    use tucker_exec::ExecContext;
    use tucker_linalg::Matrix;
    use tucker_store::write_tucker_ctx;

    let core_dims = [64usize, 64, 130];
    let core = DenseTensor::from_fn(&core_dims, |idx| {
        let mut v = 0.2;
        for (m, &i) in idx.iter().enumerate() {
            v += ((m + 1) as f64 * 0.037 * i as f64).sin();
        }
        v
    });
    let factors: Vec<Matrix> = core_dims.iter().map(|&d| Matrix::identity(d)).collect();
    let tucker = TuckerTensor::new(core, factors);

    for codec in [Codec::F64, Codec::Q16] {
        let mut per_thread_bytes = Vec::new();
        let mut per_thread_cores: Vec<Vec<f64>> = Vec::new();
        for threads in [1usize, 4] {
            let ctx = ExecContext::new(threads);
            let path = temp_tkr(&format!("wave_{}_t{threads}", codec.name()));
            write_tucker_ctx(&path, &tucker, &StoreOptions::new(codec, 1e-3), &ctx).unwrap();
            per_thread_bytes.push(std::fs::read(&path).unwrap());
            let artifact = TkrArtifact::open_ctx(&path, &ctx).unwrap();
            std::fs::remove_file(&path).ok();
            assert_eq!(artifact.tucker().core.dims(), tucker.core.dims());
            per_thread_cores.push(artifact.tucker().core.as_slice().to_vec());
        }
        assert_eq!(
            per_thread_bytes[0],
            per_thread_bytes[1],
            "{}: wave split changed the artifact bytes",
            codec.name()
        );
        assert_eq!(
            per_thread_cores[0],
            per_thread_cores[1],
            "{}: wave split changed the decoded core",
            codec.name()
        );
        if codec == Codec::F64 {
            // Lossless codec: every chunk of every wave round-trips exactly.
            assert_eq!(per_thread_cores[0], tucker.core.as_slice());
        }
    }
}
