//! Determinism contract of the execution layer (ISSUE 3, renegotiated for the
//! packed SIMD microkernels in ISSUE 8 — `docs/ARCHITECTURE.md` §4).
//!
//! The contract is per output element: one running accumulator, seeded from
//! the beta-scaled C, adding `fl(fl(alpha·a)·b)` terms in ascending
//! contraction order, no FMA on any SIMD tier. Every kernel routed through
//! `tucker-exec` partitions only *output* index space and preserves that
//! recurrence, so the decompositions must be **bit-identical** — not merely
//! close — for every thread count: 1 thread, a small pool, and an
//! oversubscribed pool (more threads than this machine has cores). These
//! properties sweep random odd shapes and all modes through TTM, Gram,
//! ST-HOSVD, and HOOI, comparing raw `f64` slices with exact equality.
//! (`crates/linalg/tests/microkernel.rs` pins the same recurrence per kernel
//! and `tests/simd_tiers.rs` pins it across `TUCKER_SIMD` tiers; CI re-runs
//! this suite under `TUCKER_SIMD=scalar` and `auto`.)

use proptest::prelude::*;
use tucker_core::hooi::HooiOptions;
use tucker_core::sthosvd::SthosvdOptions;
use tucker_core::{hooi_ctx, st_hosvd_ctx};
use tucker_exec::ExecContext;
use tucker_linalg::Matrix;
use tucker_tensor::{gram_ctx, ttm_ctx, DenseTensor, TtmTranspose};

/// Pools under test: sequential, a small pool, and an oversubscribed pool
/// (32 threads is far more than the CI machines have cores).
const THREAD_COUNTS: [usize; 2] = [4, 32];

/// Strategy: a 2–4-way tensor with deliberately odd, uneven dims (3..=9) so
/// chunk boundaries land mid-block in every partitioner.
fn arbitrary_tensor() -> impl Strategy<Value = DenseTensor> {
    prop::collection::vec(3usize..=9, 2..=4).prop_flat_map(|dims| {
        let len: usize = dims.iter().product();
        prop::collection::vec(-1.0f64..1.0, len)
            .prop_map(move |data| DenseTensor::from_vec(&dims, data))
    })
}

/// A deterministic dense matrix for TTM tests.
fn test_matrix(rows: usize, cols: usize, phase: f64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        ((i * 13 + j * 7) as f64 * 0.17 + phase).sin()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ttm_is_bit_identical_across_thread_counts(
        x in arbitrary_tensor(),
        mode_sel in 0usize..4,
        k in 1usize..6,
    ) {
        let mode = mode_sel % x.ndims();
        let baseline_ctx = ExecContext::new(1);
        for (trans, v) in [
            (TtmTranspose::NoTranspose, test_matrix(k, x.dim(mode), 0.3)),
            (TtmTranspose::Transpose, test_matrix(x.dim(mode), k, 0.7)),
        ] {
            let baseline = ttm_ctx(&baseline_ctx, &x, &v, mode, trans);
            for threads in THREAD_COUNTS {
                let ctx = ExecContext::new(threads);
                let out = ttm_ctx(&ctx, &x, &v, mode, trans);
                prop_assert_eq!(out.as_slice(), baseline.as_slice());
            }
        }
    }

    #[test]
    fn gram_is_bit_identical_across_thread_counts(
        x in arbitrary_tensor(),
        mode_sel in 0usize..4,
    ) {
        let mode = mode_sel % x.ndims();
        let baseline = gram_ctx(&ExecContext::new(1), &x, mode);
        for threads in THREAD_COUNTS {
            let s = gram_ctx(&ExecContext::new(threads), &x, mode);
            prop_assert_eq!(s.as_slice(), baseline.as_slice());
        }
    }

    #[test]
    fn st_hosvd_is_bit_identical_across_thread_counts(x in arbitrary_tensor()) {
        let opts = SthosvdOptions::with_tolerance(0.2);
        let baseline = st_hosvd_ctx(&x, &opts, &ExecContext::new(1));
        for threads in THREAD_COUNTS {
            let r = st_hosvd_ctx(&x, &opts, &ExecContext::new(threads));
            prop_assert_eq!(&r.ranks, &baseline.ranks);
            prop_assert_eq!(
                r.tucker.core.as_slice(),
                baseline.tucker.core.as_slice()
            );
            for (a, b) in r.tucker.factors.iter().zip(baseline.tucker.factors.iter()) {
                prop_assert_eq!(a.as_slice(), b.as_slice());
            }
            prop_assert_eq!(r.discarded_energy, baseline.discarded_energy);
        }
    }

    #[test]
    fn hooi_is_bit_identical_across_thread_counts(x in arbitrary_tensor()) {
        let ranks: Vec<usize> = x.dims().iter().map(|&d| d.min(2)).collect();
        let opts = HooiOptions::with_ranks(ranks, 2);
        let baseline = hooi_ctx(&x, &opts, &ExecContext::new(1));
        for threads in THREAD_COUNTS {
            let r = hooi_ctx(&x, &opts, &ExecContext::new(threads));
            prop_assert_eq!(r.iterations, baseline.iterations);
            prop_assert_eq!(&r.fit_history, &baseline.fit_history);
            prop_assert_eq!(
                r.tucker.core.as_slice(),
                baseline.tucker.core.as_slice()
            );
            for (a, b) in r.tucker.factors.iter().zip(baseline.tucker.factors.iter()) {
                prop_assert_eq!(a.as_slice(), b.as_slice());
            }
        }
    }
}

/// Shapes sized to actually clear the parallel work thresholds (the proptest
/// shapes above keep the suite fast but mostly exercise the small-problem
/// fallbacks; this test forces the pool paths).
#[test]
fn large_kernels_are_bit_identical_across_thread_counts() {
    let x = DenseTensor::from_fn(&[40, 36, 34], |idx| {
        let mut v = 0.3;
        for (k, &i) in idx.iter().enumerate() {
            v += ((k + 1) as f64 * 0.11 * i as f64).sin();
        }
        v
    });
    let opts = SthosvdOptions::with_ranks(vec![9, 8, 7]);
    let baseline = st_hosvd_ctx(&x, &opts, &ExecContext::new(1));
    for threads in [2usize, 4, 8, 32] {
        let ctx = ExecContext::new(threads);
        let r = st_hosvd_ctx(&x, &opts, &ctx);
        assert_eq!(r.tucker.core.as_slice(), baseline.tucker.core.as_slice());
        for (a, b) in r.tucker.factors.iter().zip(baseline.tucker.factors.iter()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        // Reconstruction exercises the NoTranspose TTM chain at full size.
        let rec = baseline.tucker.reconstruct_ctx(&ExecContext::new(1));
        let rec_t = r.tucker.reconstruct_ctx(&ctx);
        assert_eq!(rec.as_slice(), rec_t.as_slice());
    }
}

/// The same determinism contract across *transport backends* (ISSUE 10):
/// under the env-selected backend (`TUCKER_TRANSPORT`, `TUCKER_RANKS` — the
/// knobs CI's TCP re-runs of this suite turn), two distributed ST-HOSVD
/// runs of the same program must be bit-identical on every rank, whether
/// the ranks are threads or spawned processes.
#[test]
fn env_transport_repeated_dist_runs_are_bit_identical() {
    use tucker_core::dist::{dist_st_hosvd, DistTensor};
    use tucker_distmem::{Communicator, ProcGrid};
    use tucker_net::{env_ranks, spmd_transport, test_exec_args, transport_from_env, SpmdHandle};

    let kind = transport_from_env();
    let p = env_ranks();
    let grid = match p {
        1 => vec![1usize, 1, 1],
        2 => vec![2, 1, 1],
        4 => vec![2, 2, 1],
        8 => vec![2, 2, 2],
        other => vec![other, 1, 1],
    };
    let x = DenseTensor::from_fn(&[12, 10, 8], |idx| {
        let mut v = 1.0;
        for (k, &i) in idx.iter().enumerate() {
            v += ((k + 1) as f64 * 0.17 * i as f64).sin();
        }
        v
    });
    let opts = SthosvdOptions::with_ranks(vec![4, 3, 3]);
    let exec = test_exec_args("env_transport_repeated_dist_runs_are_bit_identical");
    let run = |name: &'static str| -> SpmdHandle<Vec<f64>> {
        let x = x.clone();
        let opts = opts.clone();
        spmd_transport(
            kind,
            name,
            ProcGrid::new(&grid),
            &exec,
            move |comm: Communicator| {
                let dx = DistTensor::from_global(&comm, &x);
                let r = dist_st_hosvd(&comm, &dx, &opts);
                match r.tucker.gather_to_root(&comm) {
                    Some(t) => {
                        let mut out: Vec<f64> = t.core.as_slice().to_vec();
                        for f in &t.factors {
                            out.extend_from_slice(f.as_slice());
                        }
                        out
                    }
                    None => vec![],
                }
            },
        )
    };
    let first = run("det_env_first");
    let second = run("det_env_second");
    assert!(
        !first.results[0].is_empty(),
        "rank 0 must gather the decomposition"
    );
    if matches!(kind, tucker_net::TransportKind::Tcp) && p > 1 {
        let wire: u64 = first.stats.iter().map(|s| s.wire_bytes_sent).sum();
        assert!(wire > 0, "a tcp run must move real bytes on the wire");
    }
    for r in 0..grid.iter().product::<usize>() {
        assert_eq!(
            first.results[r].len(),
            second.results[r].len(),
            "rank {r}: result shapes diverge between repeated runs"
        );
        for (i, (a, b)) in first.results[r].iter().zip(&second.results[r]).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "rank {r}, word {i}: repeated {} runs diverge: {a:e} vs {b:e}",
                kind.label()
            );
        }
    }
}
