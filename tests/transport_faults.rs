//! Fault-injection battery for the `tucker-net` transport (ISSUE 10
//! satellite): nothing a peer — or an attacker holding a raw loopback
//! socket — can put on the wire may panic a rank, wedge it past its
//! deadline, or silently corrupt a region. Truncated frames, zero and
//! oversized length prefixes, unknown opcodes, garbage bodies, region
//! mix-ups, injected aborts, silent peers, mid-collective disconnects and
//! a worker *process* dying mid-region must all surface as **typed**
//! errors ([`NetError`] / [`TransportError`]), within their deadlines.
//!
//! Three layers, mirroring `tests/service.rs`:
//! 1. cursor-level proptest over the frame decoder (no sockets);
//! 2. real-socket injection through [`TcpTransport::over_streams`], with an
//!    attacker-held [`TcpStream`] as the "peer";
//! 3. the full multi-process launcher, with a worker killed mid-region.

use proptest::prelude::*;
use std::io::{Cursor, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};
use tucker_distmem::collectives::all_reduce;
use tucker_distmem::subcomm::SubCommunicator;
use tucker_distmem::transport::TransportError;
use tucker_distmem::{CommStats, Communicator, ProcGrid, Wire};
use tucker_net::frame::{encode_frame, read_frame, MAX_FRAME, OP_ABORT, OP_MSG};
use tucker_net::{
    local_mesh, test_exec_args, try_spmd_transport, NetError, SpmdHandle, TcpTransport, Transport,
    TransportKind,
};

/// A victim transport whose single peer (rank 1) is an attacker-held raw
/// socket: whatever bytes the test writes there are what `recv(1)` reads.
fn rigged_pair(timeout: Duration) -> (TcpTransport, TcpStream) {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let attacker = TcpStream::connect(l.local_addr().expect("addr")).expect("connect");
    let (victim_side, _) = l.accept().expect("accept");
    let victim = TcpTransport::over_streams(
        0,
        2,
        vec![None, Some(victim_side)],
        CommStats::new_shared(),
        timeout,
    )
    .expect("transport over rigged stream");
    (victim, attacker)
}

// ---------------------------------------------------------------------------
// 1. Cursor-level: the frame decoder under arbitrary bytes.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any declared length — zero, plausible, or absurd — with any tail is
    /// either a decoded frame or a typed error; the reader never panics and
    /// oversized declarations are rejected *before* allocation.
    #[test]
    fn arbitrary_prefixes_and_tails_never_panic_the_reader(
        sel in 0usize..3,
        len_small in 1u32..=2048,
        len_big in (MAX_FRAME + 1)..=u32::MAX,
        tail in prop::collection::vec(0u8..=255, 0..256),
    ) {
        let len = match sel {
            0 => 0u32,
            1 => len_small,
            _ => len_big,
        };
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(&tail);
        match read_frame(&mut Cursor::new(&bytes), None) {
            Ok((_op, body)) => {
                // Only possible when the tail really contained the payload.
                prop_assert!(len >= 1 && tail.len() + 1 > body.len());
            }
            Err(e) => { let _ = e.to_string(); }
        }
    }

    /// A well-formed `MSG` frame cut at any byte is `Closed` (nothing read)
    /// or `Truncated` (mid-frame) — never a panic, never a misparse.
    #[test]
    fn truncation_at_every_point_is_typed(
        word_bits in prop::collection::vec(0u64..u64::MAX, 0..32),
        cut_frac in 0.0f64..1.0,
    ) {
        // Raw bit patterns cover NaNs, infinities and subnormals too.
        let words: Vec<f64> = word_bits.into_iter().map(f64::from_bits).collect();
        let mut body = Vec::new();
        (0u64, words).encode(&mut body);
        let frame = encode_frame(OP_MSG, &body).unwrap();
        let cut = ((frame.len() - 1) as f64 * cut_frac) as usize;
        match read_frame(&mut Cursor::new(&frame[..cut]), None) {
            Err(NetError::Closed { .. }) => prop_assert!(cut == 0),
            Err(NetError::Truncated { .. }) => prop_assert!(cut >= 1),
            other => prop_assert!(false, "cut at {cut} must be typed, got {other:?}"),
        }
    }

    /// Every length past the cap is refused with the declared value echoed.
    #[test]
    fn oversized_declared_lengths_are_rejected_before_allocation(
        len in (MAX_FRAME + 1)..=u32::MAX,
    ) {
        let bytes = len.to_le_bytes();
        match read_frame(&mut Cursor::new(&bytes), None) {
            Err(NetError::FrameTooLarge { len: got, .. }) => {
                prop_assert_eq!(got, len as u64);
            }
            other => prop_assert!(false, "expected FrameTooLarge, got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Real sockets: garbage spoken at a live transport.
// ---------------------------------------------------------------------------

#[test]
fn unknown_opcode_is_a_typed_protocol_error() {
    let (victim, mut attacker) = rigged_pair(Duration::from_secs(5));
    let frame = encode_frame(0x7f, &[1, 2, 3]).unwrap();
    attacker.write_all(&frame).unwrap();
    match victim.recv(1) {
        Err(TransportError::Protocol { detail }) => {
            assert!(detail.contains("opcode"), "unhelpful detail: {detail}")
        }
        other => panic!("unknown opcode must be Protocol, got {other:?}"),
    }
}

#[test]
fn oversized_and_zero_length_prefixes_are_typed_on_a_socket() {
    let (victim, mut attacker) = rigged_pair(Duration::from_secs(5));
    attacker.write_all(&(MAX_FRAME + 1).to_le_bytes()).unwrap();
    assert!(
        matches!(victim.recv(1), Err(TransportError::Protocol { .. })),
        "oversized prefix must be Protocol"
    );

    let (victim, mut attacker) = rigged_pair(Duration::from_secs(5));
    attacker.write_all(&0u32.to_le_bytes()).unwrap();
    assert!(
        matches!(victim.recv(1), Err(TransportError::Protocol { .. })),
        "zero-length prefix must be Protocol"
    );
}

#[test]
fn mid_frame_disconnect_is_peer_gone() {
    let (victim, mut attacker) = rigged_pair(Duration::from_secs(5));
    // Declare 64 payload bytes, deliver 5, hang up.
    attacker.write_all(&64u32.to_le_bytes()).unwrap();
    attacker.write_all(&[OP_MSG, 1, 2, 3, 4]).unwrap();
    drop(attacker);
    match victim.recv(1) {
        Err(TransportError::PeerGone { peer }) => assert_eq!(peer, 1),
        other => panic!("mid-frame disconnect must be PeerGone, got {other:?}"),
    }
}

#[test]
fn injected_abort_surfaces_with_its_rank_attribution() {
    let (victim, mut attacker) = rigged_pair(Duration::from_secs(5));
    let mut body = Vec::new();
    (0u64, 1u64, "synthetic abort".to_string()).encode(&mut body);
    attacker
        .write_all(&encode_frame(OP_ABORT, &body).unwrap())
        .unwrap();
    match victim.recv(1) {
        Err(TransportError::Aborted { rank, detail }) => {
            assert_eq!(rank, 1);
            assert!(detail.contains("synthetic abort"));
        }
        other => panic!("injected ABORT must be Aborted, got {other:?}"),
    }
}

#[test]
fn message_stamped_with_a_foreign_region_is_typed() {
    let (victim, mut attacker) = rigged_pair(Duration::from_secs(5));
    let mut body = Vec::new();
    (7u64, vec![1.0f64, 2.0]).encode(&mut body);
    attacker
        .write_all(&encode_frame(OP_MSG, &body).unwrap())
        .unwrap();
    match victim.recv(1) {
        Err(TransportError::Protocol { detail }) => {
            assert!(detail.contains("region"), "unhelpful detail: {detail}")
        }
        other => panic!("foreign region must be Protocol, got {other:?}"),
    }
}

#[test]
fn garbage_msg_body_fails_decode_not_panic() {
    let (victim, mut attacker) = rigged_pair(Duration::from_secs(5));
    // Region 0, then a word count claiming far more data than follows.
    let mut body = Vec::new();
    0u64.encode(&mut body);
    1_000u64.encode(&mut body);
    body.extend_from_slice(&[0xAB; 8]);
    attacker
        .write_all(&encode_frame(OP_MSG, &body).unwrap())
        .unwrap();
    assert!(
        matches!(victim.recv(1), Err(TransportError::Protocol { .. })),
        "lying word count must be Protocol"
    );
}

#[test]
fn silent_peer_times_out_within_its_deadline() {
    let (victim, _attacker) = rigged_pair(Duration::from_millis(300));
    let t0 = Instant::now();
    match victim.recv(1) {
        Err(TransportError::Timeout { peer, .. }) => assert_eq!(peer, 1),
        other => panic!("silent peer must be Timeout, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "timeout fired after {:?} — the deadline is not being honored",
        t0.elapsed()
    );
}

#[test]
fn mid_collective_disconnect_unblocks_every_survivor() {
    // Rank 2 of a 3-rank mesh vanishes while 0 and 1 are inside a barrier:
    // both survivors must come back with typed errors, not hang.
    let mut world = local_mesh(3, Duration::from_millis(500)).expect("mesh");
    let t2 = world.pop().unwrap();
    let t1 = world.pop().unwrap();
    let t0 = world.pop().unwrap();
    drop(t2); // all of rank 2's sockets close
    let started = Instant::now();
    let (r0, r1) = std::thread::scope(|s| {
        let h0 = s.spawn(move || t0.barrier());
        let h1 = s.spawn(move || t1.barrier());
        (h0.join().unwrap(), h1.join().unwrap())
    });
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "barrier survivors wedged for {:?}",
        started.elapsed()
    );
    assert!(r0.is_err(), "rank 0 must see its peer vanish, got {r0:?}");
    assert!(
        r1.is_err(),
        "rank 1 must see the collective fail, got {r1:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary byte salvos fired at a live transport, then a hang-up:
    /// `recv` terminates promptly with a decoded message or a typed error.
    #[test]
    fn random_socket_salvos_terminate_with_typed_results(
        salvo in prop::collection::vec(0u8..=255, 0..256),
    ) {
        let (victim, mut attacker) = rigged_pair(Duration::from_millis(400));
        attacker.write_all(&salvo).unwrap();
        drop(attacker);
        let t0 = Instant::now();
        if let Err(e) = victim.recv(1) {
            let _ = e.to_string(); // typed and printable, never a panic
        }
        prop_assert!(
            t0.elapsed() < Duration::from_secs(5),
            "recv wedged for {:?} on a {}-byte salvo", t0.elapsed(), salvo.len()
        );
    }
}

// ---------------------------------------------------------------------------
// 3. Full launcher: a worker process dying mid-region.
// ---------------------------------------------------------------------------

#[test]
fn worker_process_death_mid_region_is_typed_and_poisons_the_session() {
    // A short wire deadline so even the worst path (a survivor blocked on a
    // read from the dead rank) resolves quickly.
    std::env::set_var("TUCKER_NET_TIMEOUT_MS", "8000");
    let exec = test_exec_args("worker_process_death_mid_region_is_typed_and_poisons_the_session");
    let grid = [2usize, 1, 1];
    let f = |comm: Communicator| -> Vec<f64> {
        if comm.rank() == 1 {
            // Not a panic — the process just dies, the harshest disconnect
            // the transport can see (no ABORT, no PANIC frame, only EOF).
            std::process::exit(7);
        }
        let g = SubCommunicator::world_group(&comm);
        all_reduce(&g, &[1.0, 2.0])
    };
    let started = Instant::now();
    let r: Result<SpmdHandle<Vec<f64>>, NetError> = try_spmd_transport(
        TransportKind::Tcp,
        "fault_exit",
        ProcGrid::new(&grid),
        &exec,
        f,
    );
    match r {
        Err(NetError::RankPanicked { .. }) => {}
        other => panic!("a dead worker must fail the region as RankPanicked, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "region failure took {:?} — deadlines are not being honored",
        started.elapsed()
    );

    // The socket mesh is now in an unknowable state: further regions on the
    // same fleet must be refused immediately with a typed error.
    let again = Instant::now();
    let r2: Result<SpmdHandle<Vec<f64>>, NetError> = try_spmd_transport(
        TransportKind::Tcp,
        "fault_exit_followup",
        ProcGrid::new(&grid),
        &exec,
        |_comm: Communicator| -> Vec<f64> { vec![] },
    );
    assert!(
        matches!(r2, Err(NetError::SessionPoisoned { .. })),
        "a poisoned session must refuse new regions, got {r2:?}"
    );
    assert!(
        again.elapsed() < Duration::from_secs(2),
        "poisoned-session refusal must be immediate, took {:?}",
        again.elapsed()
    );
}
