//! End-to-end integration tests: generate scientific-like data, compress it,
//! reconstruct it, and check every guarantee the paper states.

use parallel_tucker::prelude::*;
use tucker_core::error::{error_bound, mode_wise_error_curves, ranks_for_tolerance};
use tucker_core::hooi::{hooi, HooiOptions};
use tucker_core::thosvd::t_hosvd;
use tucker_core::RankSelection;
use tucker_scidata::normalize_per_slice;

/// A small but structured combustion-like dataset used across these tests.
fn small_dataset() -> DenseTensor {
    let ds = tucker_scidata::DatasetPreset::Hcci.surrogate_config(1, 31);
    // shrink for test speed
    let cfg = tucker_scidata::CombustionConfig {
        grid: vec![20, 20],
        n_variables: 8,
        n_timesteps: 12,
        ..ds
    };
    let mut field = cfg.generate().data;
    normalize_per_slice(&mut field, 2);
    field
}

#[test]
fn tolerance_guarantee_holds_across_epsilons() {
    let x = small_dataset();
    for eps in [1e-1, 1e-2, 1e-3, 1e-4] {
        let result = st_hosvd(&x, &SthosvdOptions::with_tolerance(eps));
        let rec = result.tucker.reconstruct();
        let err = normalized_rms_error(&x, &rec);
        assert!(
            err <= eps + 1e-12,
            "eps={eps}: actual error {err} exceeds the requested tolerance"
        );
        assert!(err <= result.error_bound() + 1e-12);
    }
}

#[test]
fn compression_improves_monotonically_with_epsilon() {
    let x = small_dataset();
    let mut previous_ratio = f64::INFINITY;
    for eps in [1e-1, 1e-2, 1e-3, 1e-4] {
        let result = st_hosvd(&x, &SthosvdOptions::with_tolerance(eps));
        let ratio = result.tucker.compression_ratio(x.dims());
        assert!(
            ratio <= previous_ratio + 1e-12,
            "tighter tolerance must not compress better: {ratio} > {previous_ratio}"
        );
        previous_ratio = ratio;
    }
}

#[test]
fn hooi_never_degrades_sthosvd() {
    let x = small_dataset();
    let st = st_hosvd(&x, &SthosvdOptions::with_tolerance(1e-2));
    let ho = hooi(&x, &HooiOptions::with_ranks(st.ranks.clone(), 3));
    let st_err = normalized_rms_error(&x, &st.tucker.reconstruct());
    let ho_err = normalized_rms_error(&x, &ho.tucker.reconstruct());
    assert!(ho_err <= st_err + 1e-12);
    for w in ho.fit_history.windows(2) {
        assert!(w[1] <= w[0] + 1e-9 * x.norm_sq());
    }
}

#[test]
fn thosvd_sthosvd_and_hooi_agree_on_well_separated_data() {
    // For data with clear low-rank structure the three algorithms find
    // essentially the same approximation quality at fixed ranks.
    let x = NoisyLowRank {
        dims: vec![16, 14, 12],
        ranks: vec![4, 3, 3],
        noise_level: 0.05,
        seed: 8,
    }
    .generate();
    let ranks = vec![4usize, 3, 3];
    let th = t_hosvd(&x, &RankSelection::Fixed(ranks.clone()));
    let st = st_hosvd(&x, &SthosvdOptions::with_ranks(ranks.clone()));
    let ho = hooi(&x, &HooiOptions::with_ranks(ranks, 3));
    let eth = normalized_rms_error(&x, &th.tucker.reconstruct());
    let est = normalized_rms_error(&x, &st.tucker.reconstruct());
    let eho = normalized_rms_error(&x, &ho.tucker.reconstruct());
    assert!((eth - est).abs() < 0.2 * eth.max(est));
    assert!(eho <= est + 1e-12);
    assert!(eho <= eth + 1e-12);
}

#[test]
fn mode_wise_curves_predict_achievable_ranks() {
    let x = small_dataset();
    let curves = mode_wise_error_curves(&x);
    let eps = 1e-2;
    let curve_ranks = ranks_for_tolerance(&curves, eps);
    // Compressing with exactly those ranks satisfies the eq. (3) bound and the
    // bound itself respects eps.
    let bound = error_bound(&curves, &curve_ranks, x.norm());
    assert!(bound <= eps + 1e-12);
    let st = st_hosvd(&x, &SthosvdOptions::with_ranks(curve_ranks));
    let err = normalized_rms_error(&x, &st.tucker.reconstruct());
    assert!(err <= bound + 1e-12);
}

#[test]
fn normalization_then_compression_round_trips_to_physical_units() {
    // Compress normalized data, reconstruct, de-normalize, and compare with the
    // original physical-units field — the full pipeline a user would run.
    let cfg = tucker_scidata::CombustionConfig {
        grid: vec![16, 16],
        n_variables: 6,
        n_timesteps: 10,
        n_kernels: 5,
        species_rank: 3,
        kernel_width: 0.15,
        drift: 0.2,
        noise_level: 1e-5,
        seed: 77,
    };
    let physical = cfg.generate().data;
    let mut normalized = physical.clone();
    let norm = normalize_per_slice(&mut normalized, 2);

    let result = st_hosvd(&normalized, &SthosvdOptions::with_tolerance(1e-5));
    let mut rec = result.tucker.reconstruct();
    norm.invert(&mut rec);

    let err = normalized_rms_error(&physical, &rec);
    assert!(
        err < 1e-3,
        "physical-units reconstruction error too large: {err}"
    );
}

#[test]
fn relative_compressibility_ordering_matches_paper() {
    // SP most compressible, TJLR least (Fig. 7), at eps = 1e-3, on reduced-size
    // surrogates for test speed.
    let eps = 1e-3;
    let ratio_for = |preset: DatasetPreset| -> f64 {
        let mut cfg = preset.surrogate_config(1, 100);
        // Shrink all surrogates to comparable small sizes for test runtime.
        cfg.grid = cfg.grid.iter().map(|&g| (g / 2).max(8)).collect();
        cfg.n_timesteps = cfg.n_timesteps.min(8);
        let mut data = cfg.generate().data;
        normalize_per_slice(&mut data, cfg.grid.len());
        let result = st_hosvd(&data, &SthosvdOptions::with_tolerance(eps));
        tucker_core::compression_ratio(data.dims(), &result.ranks)
    };
    let sp = ratio_for(DatasetPreset::Sp);
    let hcci = ratio_for(DatasetPreset::Hcci);
    let tjlr = ratio_for(DatasetPreset::Tjlr);
    assert!(
        sp > tjlr,
        "SP ({sp:.1}x) should compress better than TJLR ({tjlr:.1}x)"
    );
    assert!(
        hcci > tjlr,
        "HCCI ({hcci:.1}x) should compress better than TJLR ({tjlr:.1}x)"
    );
}
