//! The `tucker-api` facade contract (ISSUE 5 acceptance criteria):
//!
//! * every `CompressionPlan` path — in-memory / streaming / distributed ×
//!   tolerance / fixed-ranks, with and without HOOI refinement — is
//!   **bit-identical** to the corresponding direct-call pipeline;
//! * `CompressionPlan::write_to` produces artifacts **byte-identical** to
//!   the direct `write_tucker` / `compress_streaming` / `gather_and_write`
//!   pipelines, for every codec (f64 / f32 / q16);
//! * the eager and lazy `TensorQuery` backends answer every query shape
//!   byte-for-byte identically, through generic code that cannot tell them
//!   apart;
//! * no malformed input reachable through `tucker-api` panics — degenerate
//!   shapes, oversized ranks, bad tolerances, bad orders, bad grids, bad
//!   chunks, and out-of-range queries all surface as typed `TuckerError`s.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use tucker_api::{Compressor, KernelPath, Open, PlanError, Refine, TensorQuery, TuckerError};
use tucker_core::dist::{dist_hooi, dist_st_hosvd, DistTensor};
use tucker_core::prelude::*;
use tucker_core::validate::{RankError, ShapeError};
use tucker_distmem::runtime::spmd_with_grid;
use tucker_distmem::ProcGrid;
use tucker_exec::ExecContext;
use tucker_store::{
    compress_streaming, gather_and_write, write_tucker, Codec, FormatError, StoreOptions,
    TkrHeader, TkrMetadata, TkrWriter,
};
use tucker_tensor::DenseTensor;

static COUNTER: AtomicUsize = AtomicUsize::new(0);

fn temp_tkr(tag: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("api_equiv_{}_{tag}_{n}.tkr", std::process::id()))
}

/// Strategy: a 2–4-way tensor with odd, uneven dims so chunk and block
/// boundaries land mid-structure everywhere.
fn arbitrary_tensor() -> impl Strategy<Value = DenseTensor> {
    prop::collection::vec(3usize..=9, 2..=4).prop_flat_map(|dims| {
        let len: usize = dims.iter().product();
        prop::collection::vec(-1.0f64..1.0, len)
            .prop_map(move |data| DenseTensor::from_vec(&dims, data))
    })
}

fn assert_tucker_bits(a: &TuckerTensor, b: &TuckerTensor, what: &str) {
    assert_eq!(a.core.dims(), b.core.dims(), "{what}: core dims");
    assert_eq!(a.core.as_slice(), b.core.as_slice(), "{what}: core bits");
    assert_eq!(a.factors.len(), b.factors.len(), "{what}: factor count");
    for (n, (fa, fb)) in a.factors.iter().zip(b.factors.iter()).enumerate() {
        assert_eq!(fa.as_slice(), fb.as_slice(), "{what}: factor {n} bits");
    }
}

fn assert_sthosvd_bits(facade: &tucker_api::Compressed, direct: &SthosvdResult, what: &str) {
    let r = facade.sthosvd().expect("facade ran the ST-HOSVD path");
    assert_eq!(r.ranks, direct.ranks, "{what}: ranks");
    assert_eq!(r.processed_order, direct.processed_order, "{what}: order");
    assert_eq!(
        r.norm_x_sq.to_bits(),
        direct.norm_x_sq.to_bits(),
        "{what}: norm"
    );
    assert_eq!(
        r.discarded_energy.to_bits(),
        direct.discarded_energy.to_bits(),
        "{what}: discarded energy"
    );
    assert_eq!(
        r.mode_eigenvalues, direct.mode_eigenvalues,
        "{what}: eigenvalues"
    );
    assert_tucker_bits(&r.tucker, &direct.tucker, what);
}

/// Exercises every query shape through the `TensorQuery` trait — the same
/// generic code serves both backends, so the comparison cannot cheat.
fn query_fingerprint(q: &impl TensorQuery) -> Vec<u64> {
    let dims = q.dims().to_vec();
    let mut bits = Vec::new();
    let mut absorb = |t: DenseTensor| {
        for &v in t.as_slice() {
            bits.push(v.to_bits());
        }
    };
    absorb(q.reconstruct().expect("full reconstruction"));
    let window: Vec<(usize, usize)> = dims.iter().map(|&d| (d / 3, (d / 2).max(1))).collect();
    absorb(q.reconstruct_range(&window).expect("window"));
    absorb(
        q.reconstruct_slice(dims.len() - 1, dims[dims.len() - 1] - 1)
            .expect("slice"),
    );
    let p0: Vec<usize> = dims.iter().map(|&d| d - 1).collect();
    let p1: Vec<usize> = dims.iter().map(|&d| d / 2).collect();
    bits.push(q.element(&p0).expect("element").to_bits());
    bits.push(q.element(&p1).expect("element").to_bits());
    bits.push(q.error_budget().to_bits());
    bits.push(q.file_bytes());
    bits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// In-memory path, tolerance-driven: facade ≡ `st_hosvd`, bitwise.
    #[test]
    fn in_memory_tolerance_matches_direct(x in arbitrary_tensor()) {
        let direct = st_hosvd(&x, &SthosvdOptions::with_tolerance(0.2));
        let facade = Compressor::new(&x).tolerance(0.2).run().expect("valid plan");
        assert_eq!(facade.kernel(), KernelPath::InMemory);
        assert_sthosvd_bits(&facade, &direct, "in-memory tolerance");
    }

    /// In-memory path, fixed ranks: facade ≡ `st_hosvd`, bitwise.
    #[test]
    fn in_memory_fixed_ranks_matches_direct(x in arbitrary_tensor()) {
        let ranks: Vec<usize> = x.dims().iter().map(|&d| d.min(3)).collect();
        let direct = st_hosvd(&x, &SthosvdOptions::with_ranks(ranks.clone()));
        let facade = Compressor::new(&x).ranks(ranks).run().expect("valid plan");
        assert_sthosvd_bits(&facade, &direct, "in-memory fixed ranks");
    }

    /// Refined path: facade `.refine(..)` ≡ `hooi`, bitwise, including the
    /// fit history.
    #[test]
    fn refined_matches_direct_hooi(x in arbitrary_tensor()) {
        let ranks: Vec<usize> = x.dims().iter().map(|&d| d.min(2)).collect();
        let direct = hooi(&x, &HooiOptions::with_ranks(ranks.clone(), 2));
        let facade = Compressor::new(&x)
            .ranks(ranks)
            .refine(Refine::sweeps(2))
            .run()
            .expect("valid plan");
        assert_eq!(facade.kernel(), KernelPath::InMemoryRefined);
        let h = facade.hooi().expect("refined run returns HOOI diagnostics");
        assert_eq!(h.iterations, direct.iterations, "iterations");
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&h.fit_history), bits(&direct.fit_history), "fit history");
        assert_tucker_bits(&h.tucker, &direct.tucker, "hooi");
    }

    /// Streaming path across slab widths: facade ≡ `st_hosvd_streaming`
    /// ≡ `st_hosvd`, bitwise.
    #[test]
    fn streaming_matches_direct(x in arbitrary_tensor()) {
        let in_memory = st_hosvd(&x, &SthosvdOptions::with_tolerance(0.2));
        let last = *x.dims().last().unwrap();
        for width in [1usize, 3, last] {
            let facade = Compressor::from_slabs(&x)
                .tolerance(0.2)
                .slab_width(width)
                .run()
                .expect("valid plan");
            assert_eq!(facade.kernel(), KernelPath::Streaming);
            assert_sthosvd_bits(&facade, &in_memory, &format!("streaming width {width}"));
        }
    }

    /// Distributed path on a 2×1×…grid: facade ≡ `dist_st_hosvd` + gather,
    /// bitwise, for tolerance and fixed-rank selection.
    #[test]
    fn distributed_matches_direct(x in arbitrary_tensor()) {
        let mut grid_shape = vec![1usize; x.ndims()];
        grid_shape[0] = 2.min(x.dims()[0]);
        let ranks: Vec<usize> = x.dims().iter().map(|&d| d.min(3)).collect();
        for sel in [SthosvdOptions::with_tolerance(0.2), SthosvdOptions::with_ranks(ranks)] {
            let x2 = x.clone();
            let sel2 = sel.clone();
            let direct = spmd_with_grid(ProcGrid::new(&grid_shape), move |comm| {
                let dx = DistTensor::from_global(&comm, &x2);
                let r = dist_st_hosvd(&comm, &dx, &sel2);
                r.tucker.gather_to_root(&comm).map(|t| (t, r.ranks))
            })
            .into_iter()
            .flatten()
            .next()
            .expect("root gathered");

            let mut c = Compressor::distributed(&x, ProcGrid::new(&grid_shape));
            c = match &sel.rank {
                tucker_core::rank::RankSelection::Fixed(r) => c.ranks(r.clone()),
                _ => c.tolerance(0.2),
            };
            let facade = c.run().expect("valid plan");
            assert_eq!(facade.kernel(), KernelPath::Distributed);
            assert!(facade.dist_info().is_some(), "distributed runs carry stats");
            assert_eq!(facade.ranks(), direct.1.as_slice(), "dist ranks");
            assert_tucker_bits(facade.tucker(), &direct.0, "distributed");
        }
    }

    /// The write sink, all three codecs: facade artifacts are byte-identical
    /// to `write_tucker` on the direct decomposition — and, for the
    /// streaming source, to the `compress_streaming` pipeline.
    #[test]
    fn write_to_is_byte_identical_for_every_codec(x in arbitrary_tensor()) {
        let eps = 1e-2;
        let direct = st_hosvd(&x, &SthosvdOptions::with_tolerance(eps));
        for codec in Codec::all() {
            let direct_path = temp_tkr(&format!("direct_{}", codec.name()));
            write_tucker(&direct_path, &direct.tucker, &StoreOptions::new(codec, eps)).unwrap();

            let facade_path = temp_tkr(&format!("facade_{}", codec.name()));
            let written = Compressor::new(&x)
                .tolerance(eps)
                .codec(codec)
                .write_to(&facade_path)
                .expect("valid plan");

            let direct_bytes = std::fs::read(&direct_path).unwrap();
            let facade_bytes = std::fs::read(&facade_path).unwrap();
            assert_eq!(direct_bytes, facade_bytes, "{}: artifact bytes", codec.name());
            assert_eq!(written.report.bytes as usize, facade_bytes.len());

            // Streaming source → same bytes again (compress_streaming is the
            // direct-call equivalent).
            let stream_path = temp_tkr(&format!("stream_{}", codec.name()));
            let (_, report) = compress_streaming(
                &stream_path,
                &x,
                &SthosvdOptions::with_tolerance(eps),
                &StreamingOptions::with_slab_width(2),
                &StoreOptions::new(codec, eps),
                ExecContext::global(),
            )
            .unwrap();
            let facade_stream_path = temp_tkr(&format!("fstream_{}", codec.name()));
            Compressor::from_slabs(&x)
                .tolerance(eps)
                .slab_width(2)
                .codec(codec)
                .write_to(&facade_stream_path)
                .expect("valid plan");
            assert_eq!(
                std::fs::read(&stream_path).unwrap(),
                std::fs::read(&facade_stream_path).unwrap(),
                "{}: streaming artifact bytes",
                codec.name()
            );
            assert_eq!(report.bytes as usize, facade_bytes.len());

            for p in [&direct_path, &facade_path, &stream_path, &facade_stream_path] {
                std::fs::remove_file(p).ok();
            }
        }
    }

    /// Eager and lazy `TensorQuery` backends agree byte-for-byte on every
    /// query shape, for every codec, through backend-blind generic code.
    #[test]
    fn eager_and_lazy_readers_agree_byte_for_byte(x in arbitrary_tensor()) {
        let eps = 1e-2;
        for codec in Codec::all() {
            let path = temp_tkr(&format!("query_{}", codec.name()));
            Compressor::new(&x)
                .tolerance(eps)
                .codec(codec)
                .write_to(&path)
                .expect("valid plan");
            let eager = Open::eager().open(&path).expect("eager open");
            let lazy = Open::lazy().cache_chunks(2).open(&path).expect("lazy open");
            std::fs::remove_file(&path).ok();
            assert_eq!(
                query_fingerprint(&eager),
                query_fingerprint(&lazy),
                "{}: eager vs lazy disagree",
                codec.name()
            );
            // Batched elements: the lazy batch walk is bit-identical to the
            // per-point walk; the eager batch shares contraction work and is
            // round-off-equivalent (a different association order of the
            // same sum) — exactly the readers' documented contracts.
            let dims = x.dims();
            let p0: Vec<usize> = dims.iter().map(|&d| d - 1).collect();
            let p1: Vec<usize> = dims.iter().map(|&d| d / 2).collect();
            let points = [p0.as_slice(), p1.as_slice()];
            let lazy_batch = lazy.elements(&points).expect("lazy batch");
            let eager_batch = eager.elements(&points).expect("eager batch");
            for (i, p) in points.iter().enumerate() {
                let single = eager.element(p).expect("element");
                assert_eq!(lazy_batch[i].to_bits(), single.to_bits(), "lazy batch bit-exact");
                let scale = single.abs().max(1.0);
                assert!(
                    (eager_batch[i] - single).abs() <= 1e-12 * scale,
                    "eager batch beyond round-off: {} vs {single}",
                    eager_batch[i]
                );
            }
            // The cache bound held while answering.
            let lazy_reader = lazy.as_lazy().expect("lazy backend");
            assert!(lazy_reader.resident_chunks() <= 2);
        }
    }
}

// ---------------------------------------------------------------------------
// Distributed write sink: facade bytes ≡ gather_and_write bytes.
// ---------------------------------------------------------------------------

#[test]
fn distributed_write_matches_gather_and_write() {
    let x = DenseTensor::from_fn(&[8, 9, 6], |idx| {
        (0.3 * idx[0] as f64).sin() + (0.2 * (idx[1] * idx[2]) as f64).cos()
    });
    let eps = 1e-3;
    let grid_shape = [2usize, 2, 1];

    let direct_path = temp_tkr("gather_direct");
    let p2 = direct_path.clone();
    let x2 = x.clone();
    spmd_with_grid(ProcGrid::new(&grid_shape), move |comm| {
        let dx = DistTensor::from_global(&comm, &x2);
        let r = dist_st_hosvd(&comm, &dx, &SthosvdOptions::with_tolerance(eps));
        gather_and_write(&comm, &r.tucker, &p2, &StoreOptions::new(Codec::Q16, eps)).unwrap();
    });

    let facade_path = temp_tkr("gather_facade");
    Compressor::distributed(&x, ProcGrid::new(&grid_shape))
        .tolerance(eps)
        .codec(Codec::Q16)
        .write_to(&facade_path)
        .expect("valid plan");

    assert_eq!(
        std::fs::read(&direct_path).unwrap(),
        std::fs::read(&facade_path).unwrap(),
        "distributed artifact bytes differ from gather_and_write"
    );
    std::fs::remove_file(&direct_path).ok();
    std::fs::remove_file(&facade_path).ok();
}

#[test]
fn distributed_refined_matches_direct_dist_hooi() {
    let x = DenseTensor::from_fn(&[8, 7, 6], |idx| {
        (0.4 * idx[0] as f64).cos() + 0.05 * (idx[1] * idx[2]) as f64
    });
    let grid_shape = [2usize, 1, 1];
    let ranks = vec![3usize, 3, 3];

    let r2 = ranks.clone();
    let x2 = x.clone();
    let direct = spmd_with_grid(ProcGrid::new(&grid_shape), move |comm| {
        let dx = DistTensor::from_global(&comm, &x2);
        let r = dist_hooi(&comm, &dx, &HooiOptions::with_ranks(r2.clone(), 2));
        r.tucker.gather_to_root(&comm)
    })
    .into_iter()
    .flatten()
    .next()
    .expect("root gathered");

    let facade = Compressor::distributed(&x, ProcGrid::new(&grid_shape))
        .ranks(ranks)
        .refine(Refine::sweeps(2))
        .run()
        .expect("valid plan");
    assert_eq!(facade.kernel(), KernelPath::DistributedRefined);
    assert_tucker_bits(facade.tucker(), &direct, "distributed hooi");
}

// ---------------------------------------------------------------------------
// Negative paths: every malformed input is a typed error, never a panic.
// ---------------------------------------------------------------------------

#[test]
fn degenerate_shapes_are_typed_errors() {
    // Empty shape: a DenseTensor cannot even be built with one, but an
    // external SlabSource can claim one — the facade rejects it cleanly.
    struct EmptySource;
    impl tucker_tensor::SlabSource for EmptySource {
        fn dims(&self) -> &[usize] {
            &[]
        }
        fn fill_slab(&self, _: usize, _: usize, _: &mut [f64]) {
            unreachable!("validation rejects the source before any read")
        }
    }
    assert!(matches!(
        Compressor::from_slabs(&EmptySource).tolerance(0.1).run(),
        Err(TuckerError::Shape(ShapeError::EmptyShape))
    ));

    // Zero-extent mode.
    let empty = DenseTensor::zeros(&[4, 0, 3]);
    assert!(matches!(
        Compressor::new(&empty).tolerance(0.1).run(),
        Err(TuckerError::Shape(ShapeError::ZeroDim { mode: 1 }))
    ));

    // A 1-way tensor cannot stream.
    let one_way = DenseTensor::zeros(&[5]);
    assert!(matches!(
        Compressor::from_slabs(&one_way).tolerance(0.1).run(),
        Err(TuckerError::Shape(ShapeError::TooFewModes {
            need: 2,
            got: 1
        }))
    ));
}

#[test]
fn bad_rank_selections_are_typed_errors() {
    let x = DenseTensor::zeros(&[6, 5, 4]);
    // Oversized rank (the satellite case: with_ranks exceeding mode dims).
    assert!(matches!(
        Compressor::new(&x).ranks(vec![6, 9, 4]).run(),
        Err(TuckerError::Rank(RankError::ExceedsDim {
            mode: 1,
            rank: 9,
            dim: 5
        }))
    ));
    assert!(matches!(
        tucker_core::try_st_hosvd(&x, &SthosvdOptions::with_ranks(vec![6, 9, 4])),
        Err(tucker_core::CoreError::Rank(RankError::ExceedsDim { .. }))
    ));
    // Wrong arity and zero rank.
    assert!(matches!(
        Compressor::new(&x).ranks(vec![2, 2]).run(),
        Err(TuckerError::Rank(RankError::Arity {
            expected: 3,
            got: 2
        }))
    ));
    assert!(matches!(
        Compressor::new(&x).ranks(vec![2, 0, 2]).run(),
        Err(TuckerError::Rank(RankError::ZeroRank { mode: 1 }))
    ));
    // Bad tolerances.
    for bad in [-0.5, f64::NAN, f64::INFINITY] {
        assert!(matches!(
            Compressor::new(&x).tolerance(bad).run(),
            Err(TuckerError::Rank(RankError::BadTolerance { .. }))
        ));
    }
    // No target at all.
    assert!(matches!(
        Compressor::new(&x).run(),
        Err(TuckerError::Plan(PlanError::NoTarget))
    ));
}

#[test]
fn bad_orders_grids_and_refines_are_typed_errors() {
    let x = DenseTensor::zeros(&[6, 5, 4]);
    // Non-permutation custom order.
    assert!(matches!(
        Compressor::new(&x)
            .tolerance(0.1)
            .order(ModeOrder::Custom(vec![0, 0, 1]))
            .run(),
        Err(TuckerError::Shape(ShapeError::InvalidModeOrder { .. }))
    ));
    // Streaming with an order that does not end in the last mode.
    assert!(matches!(
        Compressor::from_slabs(&x)
            .tolerance(0.1)
            .order(ModeOrder::Custom(vec![2, 1, 0]))
            .run(),
        Err(TuckerError::Shape(ShapeError::StreamingOrderNotLast { .. }))
    ));
    // Refinement on a streaming source.
    assert!(matches!(
        Compressor::from_slabs(&x)
            .tolerance(0.1)
            .refine(Refine::sweeps(2))
            .run(),
        Err(TuckerError::Plan(PlanError::RefineNeedsResident))
    ));
    // Grid arity mismatch and oversubscribed grid — the same taxonomy as
    // the core try_dist_* entry points.
    assert!(matches!(
        Compressor::distributed(&x, ProcGrid::new(&[2, 2]))
            .tolerance(0.1)
            .run(),
        Err(TuckerError::Shape(ShapeError::GridArity {
            grid: 2,
            tensor: 3
        }))
    ));
    assert!(matches!(
        Compressor::distributed(&x, ProcGrid::new(&[1, 1, 8]))
            .tolerance(0.1)
            .run(),
        Err(TuckerError::Shape(ShapeError::GridExceedsDim {
            mode: 2,
            procs: 8,
            dim: 4
        }))
    ));
}

#[test]
fn writer_contract_violations_are_typed_errors() {
    let x = DenseTensor::from_fn(&[6, 6, 6], |idx| (idx[0] + idx[1] + idx[2]) as f64);
    let t = st_hosvd(&x, &SthosvdOptions::with_tolerance(1e-3)).tucker;
    let header = TkrHeader {
        dims: t.original_dims(),
        ranks: t.ranks(),
        eps: 1e-3,
        codec: Codec::F64,
        quant_error_bound: 0.0,
        meta: TkrMetadata::default(),
    };
    let path = temp_tkr("writer_contract");
    let mut w = TkrWriter::try_create(&path, header.clone()).expect("valid header");

    // The satellite case: a zero-size chunk is a typed error, not an abort —
    // and surfaces as TuckerError through the facade's From conversions.
    let err: TuckerError = w.try_write_core_chunk(&[]).unwrap_err().into();
    assert!(matches!(err, TuckerError::Format(FormatError::EmptyChunk)));

    // Misaligned and overrunning chunks.
    let stride: usize = t.ranks()[..2].iter().product();
    assert!(matches!(
        w.try_write_core_chunk(&vec![0.0; stride + 1]).unwrap_err(),
        tucker_store::StoreError::Format(FormatError::MisalignedChunk { .. })
    ));
    let total: usize = t.ranks().iter().product();
    assert!(matches!(
        w.try_write_core_chunk(&vec![0.0; total + stride])
            .unwrap_err(),
        tucker_store::StoreError::Format(FormatError::CoreOverrun { .. })
    ));

    // Factor violations.
    assert!(matches!(
        w.try_write_factor(7, &t.factors[0]).unwrap_err(),
        tucker_store::StoreError::Format(FormatError::ModeOutOfRange { mode: 7, .. })
    ));
    w.try_write_factor(0, &t.factors[0]).expect("first write");
    assert!(matches!(
        w.try_write_factor(0, &t.factors[0]).unwrap_err(),
        tucker_store::StoreError::Format(FormatError::FactorRewritten { mode: 0 })
    ));

    // Premature finish.
    assert!(matches!(
        w.try_finish().unwrap_err(),
        tucker_store::StoreError::Format(FormatError::MissingFactor { mode: 1 })
    ));
    std::fs::remove_file(&path).ok();

    // A header with rank > dim is rejected at creation.
    let mut bad_header = header;
    bad_header.ranks[1] = bad_header.dims[1] + 2;
    let path2 = temp_tkr("bad_header");
    assert!(matches!(
        TkrWriter::try_create(&path2, bad_header).err(),
        Some(tucker_store::StoreError::Format(
            FormatError::RankExceedsDim { mode: 1, .. }
        ))
    ));
    std::fs::remove_file(&path2).ok();
}

#[test]
fn open_and_query_failures_are_typed_errors() {
    // Opening garbage is a Format error, not a panic (and not a bare Io).
    let path = temp_tkr("garbage");
    std::fs::write(&path, b"definitely not a tkr file").unwrap();
    assert!(matches!(
        Open::eager().open(&path),
        Err(TuckerError::Format(FormatError::Invalid(_)))
    ));
    assert!(matches!(
        Open::lazy().open(&path),
        Err(TuckerError::Format(FormatError::Invalid(_)))
    ));
    std::fs::remove_file(&path).ok();

    // A missing file stays an Io error.
    assert!(matches!(
        Open::eager().open("/nonexistent/nope.tkr"),
        Err(TuckerError::Io(_))
    ));

    // Out-of-range queries on a healthy artifact are typed Query errors on
    // both backends.
    let x = DenseTensor::from_fn(&[6, 5, 4], |idx| (idx[0] * idx[1] + idx[2]) as f64);
    let path = temp_tkr("healthy");
    Compressor::new(&x)
        .tolerance(1e-3)
        .write_to(&path)
        .expect("valid plan");
    for reader in [
        Open::eager().open(&path).unwrap(),
        Open::lazy().open(&path).unwrap(),
    ] {
        assert!(reader.reconstruct_range(&[(0, 2)]).is_err());
        assert!(reader.reconstruct_range(&[(0, 0), (0, 5), (0, 4)]).is_err());
        assert!(reader.reconstruct_slice(5, 0).is_err());
        assert!(reader.element(&[6, 0, 0]).is_err());
        assert!(reader.elements(&[&[0, 0, 0], &[0, 9, 0]]).is_err());
        // And valid requests still succeed afterwards.
        assert!(reader.element(&[5, 4, 3]).is_ok());
    }

    // cache_chunks(0) is a typed plan error on BOTH backends — a lazy
    // reader cannot function with zero resident chunks, and the eager
    // builder rejects it uniformly rather than silently ignoring it.
    for builder in [Open::eager(), Open::lazy()] {
        assert!(matches!(
            builder.cache_chunks(0).open(&path),
            Err(TuckerError::Plan(PlanError::ZeroCacheChunks))
        ));
    }
    // cache_chunks(1) remains the legal minimum and answers correctly.
    let minimal = Open::lazy().cache_chunks(1).open(&path).unwrap();
    assert!(minimal.element(&[5, 4, 3]).is_ok());
    std::fs::remove_file(&path).ok();
}

#[test]
fn rejected_header_does_not_truncate_an_existing_artifact() {
    // A service re-using an output path must not lose the previous artifact
    // when a malformed write request is rejected: validation runs before
    // the file is created/truncated.
    let x = DenseTensor::from_fn(&[6, 5, 4], |idx| (idx[0] + idx[1] * idx[2]) as f64);
    let path = temp_tkr("no_truncate");
    Compressor::new(&x)
        .tolerance(1e-3)
        .write_to(&path)
        .expect("valid plan");
    let before = std::fs::read(&path).unwrap();
    let bad = TkrHeader {
        dims: vec![6, 5, 4],
        ranks: vec![2, 9, 2], // rank > dim: rejected
        eps: 1e-3,
        codec: Codec::F64,
        quant_error_bound: 0.0,
        meta: TkrMetadata::default(),
    };
    assert!(TkrWriter::try_create(&path, bad).is_err());
    assert_eq!(
        std::fs::read(&path).unwrap(),
        before,
        "rejected request truncated the existing artifact"
    );
    // The same guarantee for headers only the serializer used to reject:
    // empty shape and label-arity mismatches are caught before File::create.
    let empty = TkrHeader {
        dims: vec![],
        ranks: vec![],
        eps: 1e-3,
        codec: Codec::F64,
        quant_error_bound: 0.0,
        meta: TkrMetadata::default(),
    };
    assert!(matches!(
        TkrWriter::try_create(&path, empty),
        Err(tucker_store::StoreError::Format(FormatError::Invalid(_)))
    ));
    let bad_labels = TkrHeader {
        dims: vec![6, 5, 4],
        ranks: vec![2, 2, 2],
        eps: 1e-3,
        codec: Codec::F64,
        quant_error_bound: 0.0,
        meta: TkrMetadata {
            dataset: "X".into(),
            mode_labels: vec!["only one".into()],
            normalization: None,
        },
    };
    assert!(matches!(
        TkrWriter::try_create(&path, bad_labels),
        Err(tucker_store::StoreError::Format(FormatError::Invalid(_)))
    ));
    assert_eq!(
        std::fs::read(&path).unwrap(),
        before,
        "serializer-level rejection truncated the existing artifact"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn inconsistent_metadata_is_rejected_at_plan_time_as_format() {
    // A label count disagreeing with the shape must fail before any kernel
    // runs — and as a Format error, not as Io after the compression.
    let x = DenseTensor::zeros(&[6, 5, 4]);
    let meta = TkrMetadata {
        dataset: "X".into(),
        mode_labels: vec!["just one".into()],
        normalization: None,
    };
    assert!(matches!(
        Compressor::new(&x).tolerance(0.1).meta(meta).plan().err(),
        Some(TuckerError::Format(FormatError::Invalid(_)))
    ));
}

#[test]
fn declared_eps_is_stamped_into_fixed_rank_artifacts() {
    let x = DenseTensor::from_fn(&[8, 7, 6], |idx| (idx[0] * idx[1] + idx[2]) as f64);
    let path = temp_tkr("declared_eps");
    // Fixed ranks carry no intrinsic tolerance; the caller declares the
    // bound it knows, and readers' error budgets reflect it.
    let ranks = vec![3usize, 3, 3];
    let direct = st_hosvd(&x, &SthosvdOptions::with_ranks(ranks.clone()));
    let declared = direct.error_bound();
    Compressor::new(&x)
        .ranks(ranks.clone())
        .declared_eps(declared)
        .write_to(&path)
        .expect("valid plan");
    let reader = Open::eager().open(&path).expect("open");
    assert_eq!(reader.header().eps.to_bits(), declared.to_bits());
    assert!(reader.error_budget() >= declared);
    std::fs::remove_file(&path).ok();

    // Without a declaration the fixed-rank default stays 0.0 (and the
    // declaration itself is validated).
    let path2 = temp_tkr("default_eps");
    Compressor::new(&x)
        .ranks(ranks.clone())
        .write_to(&path2)
        .expect("valid plan");
    let reader = Open::eager().open(&path2).expect("open");
    assert_eq!(reader.header().eps, 0.0);
    std::fs::remove_file(&path2).ok();
    assert!(matches!(
        Compressor::new(&x)
            .ranks(ranks)
            .declared_eps(f64::NAN)
            .run(),
        Err(TuckerError::Rank(RankError::BadTolerance { .. }))
    ));
}

#[test]
fn slab_range_errors_convert_into_the_hierarchy() {
    let x = DenseTensor::zeros(&[4, 3, 5]);
    let err: TuckerError = x.try_last_mode_slab(4, 3).unwrap_err().into();
    assert!(matches!(err, TuckerError::Slab(_)));
    assert!(err.to_string().contains("slab"), "unhelpful: {err}");
}

#[test]
fn facade_error_display_is_actionable() {
    let x = DenseTensor::zeros(&[6, 5, 4]);
    let err = Compressor::new(&x).ranks(vec![6, 9, 4]).run().unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("rank 9") && msg.contains("mode 1"),
        "unhelpful: {msg}"
    );
    let err = Compressor::new(&x).run().unwrap_err();
    assert!(err.to_string().contains("tolerance"), "unhelpful: {err}");
}
