//! The `tucker-serve` service contract (ISSUE 6 acceptance criteria):
//!
//! * ≥ 8 simultaneous clients interleaving mixed queries against multiple
//!   artifacts (all three codecs) each receive answers **byte-identical**
//!   to a direct in-process [`TensorQuery`] reader;
//! * graceful shutdown **drains** — requests admitted before
//!   [`ServerHandle::shutdown`] are fully answered, never dropped;
//! * the admission cap sheds overload as a **typed `Busy`** error, and the
//!   daemon keeps serving correctly afterwards;
//! * no protocol violence — truncated frames, oversized length prefixes,
//!   unknown opcodes, garbage payloads, mid-request disconnects — can
//!   panic or wedge the daemon, corrupt another session, or poison the
//!   shared cache (fault-injection proptest);
//! * the client survives a misbehaving *server* the same way: every attack
//!   yields a typed error, never a panic or an unbounded hang.

use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;
use tucker_api::{Open, TensorQuery, TuckerError};
use tucker_core::prelude::*;
use tucker_serve::{serve, ServeClient, ServeConfig, ServerHandle};
use tucker_store::{Codec, TkrHeader, TkrMetadata, TkrWriter};
use tucker_tensor::DenseTensor;

static COUNTER: AtomicUsize = AtomicUsize::new(0);

fn temp_tkr(tag: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("service_{}_{tag}_{n}.tkr", std::process::id()))
}

fn wavy(dims: &[usize], phase: f64) -> DenseTensor {
    DenseTensor::from_fn(dims, |idx| {
        let mut v = phase;
        for (k, &i) in idx.iter().enumerate() {
            v += ((k + 2) as f64 * 0.17 * i as f64 + phase).sin();
        }
        v
    })
}

/// Compresses `dims` and writes one core chunk per last-mode slab, so the
/// artifact has a deep chunk directory and the shared cache actually cycles.
fn chunked_artifact(tag: &str, dims: &[usize], codec: Codec, phase: f64) -> PathBuf {
    let x = wavy(dims, phase);
    let r = st_hosvd(&x, &SthosvdOptions::with_tolerance(1e-4));
    let t = &r.tucker;
    let path = temp_tkr(tag);
    let header = TkrHeader {
        dims: t.original_dims(),
        ranks: t.ranks(),
        eps: 1e-4,
        codec,
        quant_error_bound: 0.0,
        meta: TkrMetadata::default(),
    };
    let mut w = TkrWriter::create(&path, header).expect("create artifact");
    for (n, u) in t.factors.iter().enumerate() {
        w.write_factor(n, u).expect("write factor");
    }
    let last = *t.core.dims().last().expect("non-scalar core");
    for s in 0..last {
        w.write_core_chunk(t.core.last_mode_slab(s, 1))
            .expect("write chunk");
    }
    w.finish().expect("finish artifact");
    path
}

/// SplitMix64 — deterministic per-thread stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

// ---------------------------------------------------------------------------
// 1. Concurrency: ≥8 clients, mixed interleaved queries, 3 codecs, one cache.
// ---------------------------------------------------------------------------

#[test]
fn eight_concurrent_clients_get_byte_identical_answers() {
    let dims = [11usize, 9, 13];
    let specs = [
        ("field-f64", Codec::F64, 0.3),
        ("field-f32", Codec::F32, 1.1),
        ("field-q16", Codec::Q16, 2.4),
    ];
    let paths: Vec<PathBuf> = specs
        .iter()
        .map(|(name, codec, phase)| chunked_artifact(name, &dims, *codec, *phase))
        .collect();
    let registry: Vec<(String, PathBuf)> = specs
        .iter()
        .zip(paths.iter())
        .map(|((name, _, _), p)| (name.to_string(), p.clone()))
        .collect();
    // A cache budget well below the combined chunk inventory, so sessions
    // evict each other's chunks while answering.
    let handle = serve(
        "127.0.0.1:0",
        &registry,
        ServeConfig {
            cache_chunks: 4,
            cache_stripes: 2,
            ..ServeConfig::default()
        },
    )
    .expect("daemon binds");
    let addr = handle.addr();

    let mismatches = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for id in 0..8usize {
            let registry = &registry;
            let paths = &paths;
            joins.push(scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("client connects");
                let direct: Vec<_> = paths
                    .iter()
                    .map(|p| Open::eager().open(p).expect("direct reader"))
                    .collect();
                let mut rng = Rng(0xC0FFEE + id as u64);
                let mut bad = 0usize;
                for _ in 0..30 {
                    let a = rng.below(registry.len());
                    let (name, reader) = (&registry[a].0, &direct[a]);
                    match rng.next() % 4 {
                        0 => {
                            let idx: Vec<usize> = dims.iter().map(|&d| rng.below(d)).collect();
                            let got = client.element(name, &idx).expect("element");
                            let want = reader.element(&idx).expect("direct element");
                            bad += usize::from(got.to_bits() != want.to_bits());
                        }
                        1 => {
                            let points: Vec<Vec<usize>> = (0..6)
                                .map(|_| dims.iter().map(|&d| rng.below(d)).collect())
                                .collect();
                            let refs: Vec<&[usize]> = points.iter().map(Vec::as_slice).collect();
                            let got = client.elements(name, &refs).expect("elements");
                            // Bit-exact reference for a batch: the per-point
                            // element walk (documented reader contract).
                            let want: Vec<f64> = refs
                                .iter()
                                .map(|p| reader.element(p).expect("direct element"))
                                .collect();
                            bad += usize::from(!bits_equal(&got, &want));
                        }
                        2 => {
                            let ranges: Vec<(usize, usize)> = dims
                                .iter()
                                .map(|&d| {
                                    let s = rng.below(d);
                                    (s, 1 + rng.below(d - s))
                                })
                                .collect();
                            let got = client.reconstruct_range(name, &ranges).expect("range");
                            let want = reader.reconstruct_range(&ranges).expect("direct range");
                            bad += usize::from(
                                got.dims() != want.dims()
                                    || !bits_equal(got.as_slice(), want.as_slice()),
                            );
                        }
                        _ => {
                            let mode = rng.below(dims.len());
                            let index = rng.below(dims[mode]);
                            let got = client.reconstruct_slice(name, mode, index).expect("slice");
                            let want = reader.reconstruct_slice(mode, index).expect("direct slice");
                            bad += usize::from(
                                got.dims() != want.dims()
                                    || !bits_equal(got.as_slice(), want.as_slice()),
                            );
                        }
                    }
                }
                bad
            }));
        }
        joins
            .into_iter()
            .map(|j| j.join().expect("client thread"))
            .sum::<usize>()
    });
    assert_eq!(mismatches, 0, "remote answers diverged from direct readers");

    // The shared budget held under fire, and all three artifacts served
    // through one cache.
    let mut probe = ServeClient::connect(addr).expect("probe connects");
    let stats = probe.stats().expect("stats");
    drop(probe);
    assert_eq!(stats.artifacts.len(), 3);
    let resident: u64 = stats.artifacts.iter().map(|a| a.resident_chunks).sum();
    assert!(resident <= 4, "resident {resident} chunks exceed budget 4");
    for a in &stats.artifacts {
        assert!(a.decoded_chunks > 0, "{} never decoded", a.name);
    }

    let final_stats = handle.shutdown();
    assert_eq!(final_stats.in_flight, 0);
    for p in &paths {
        std::fs::remove_file(p).ok();
    }
}

// ---------------------------------------------------------------------------
// 2. Graceful shutdown drains admitted work.
// ---------------------------------------------------------------------------

#[test]
fn shutdown_drains_in_flight_requests() {
    let dims = [14usize, 12, 16];
    let path = chunked_artifact("drain", &dims, Codec::F64, 0.7);
    let registry = vec![("field".to_string(), path.clone())];
    // One worker so requests genuinely queue behind each other.
    let handle = serve(
        "127.0.0.1:0",
        &registry,
        ServeConfig {
            workers: 1,
            queue_depth: 8,
            cache_chunks: 4,
            ..ServeConfig::default()
        },
    )
    .expect("daemon binds");
    let addr = handle.addr();
    let expected = Open::eager()
        .open(&path)
        .expect("direct reader")
        .reconstruct_range(&[(0, dims[0]), (0, dims[1]), (0, dims[2])])
        .expect("direct range");

    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for _ in 0..4 {
            let expected = &expected;
            joins.push(scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("client connects");
                let got = client
                    .reconstruct_range("field", &[(0, 14), (0, 12), (0, 16)])
                    .expect("a request admitted before shutdown must be answered");
                assert!(
                    bits_equal(got.as_slice(), expected.as_slice()),
                    "drained reply is corrupt"
                );
            }));
        }
        // Let all four requests reach admission, then shut down while (some
        // of) them are still queued behind the single worker.
        std::thread::sleep(Duration::from_millis(150));
        let stats = handle.shutdown();
        assert_eq!(stats.in_flight, 0, "shutdown returned with work in flight");
        for j in joins {
            j.join().expect("drained client");
        }
    });
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// 3. Backpressure: overload sheds as typed Busy, service stays correct.
// ---------------------------------------------------------------------------

#[test]
fn overload_sheds_as_typed_busy_and_service_recovers() {
    let dims = [16usize, 14, 18];
    let path = chunked_artifact("storm", &dims, Codec::F32, 1.9);
    let registry = vec![("field".to_string(), path.clone())];
    let handle = serve(
        "127.0.0.1:0",
        &registry,
        ServeConfig {
            workers: 1,
            queue_depth: 1,
            cache_chunks: 2,
            ..ServeConfig::default()
        },
    )
    .expect("daemon binds");
    let addr = handle.addr();
    let direct = Open::eager().open(&path).expect("direct reader");
    let expected = direct
        .reconstruct_range(&[(0, dims[0]), (0, dims[1]), (0, dims[2])])
        .expect("direct range");

    let (ok, busy) = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for _ in 0..12 {
            let expected = &expected;
            joins.push(scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("client connects");
                match client.reconstruct_range("field", &[(0, 16), (0, 14), (0, 18)]) {
                    Ok(got) => {
                        assert!(
                            bits_equal(got.as_slice(), expected.as_slice()),
                            "accepted reply is corrupt under overload"
                        );
                        (1usize, 0usize)
                    }
                    Err(TuckerError::Busy { .. }) => (0, 1),
                    Err(e) => panic!("overload must shed as Busy, got: {e}"),
                }
            }));
        }
        joins
            .into_iter()
            .map(|j| j.join().expect("storm client"))
            .fold((0, 0), |(a, b), (c, d)| (a + c, b + d))
    });
    assert!(ok >= 1, "nothing was served during the storm");
    assert!(
        busy >= 1,
        "a 12-client storm against queue_depth=1 never tripped admission"
    );

    // After the storm the daemon serves normally and counted its rejections.
    let mut client = ServeClient::connect(addr).expect("post-storm client");
    let got = client
        .element("field", &[1, 2, 3])
        .expect("post-storm query");
    let want = direct.element(&[1, 2, 3]).expect("direct element");
    assert_eq!(got.to_bits(), want.to_bits());
    let stats = client.stats().expect("stats");
    assert!(stats.busy_rejections >= busy as u64);
    drop(client);

    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// 3b. Session cap: a connection flood is shed by the accept thread with a
//     typed Busy, before any session thread is spawned.
// ---------------------------------------------------------------------------

#[test]
fn session_cap_sheds_before_spawn() {
    let dims = [10usize, 8, 6];
    let path = chunked_artifact("cap", &dims, Codec::F64, 0.9);
    let registry = vec![("field".to_string(), path.clone())];
    let handle = serve(
        "127.0.0.1:0",
        &registry,
        ServeConfig {
            max_sessions: 2,
            cache_chunks: 4,
            ..ServeConfig::default()
        },
    )
    .expect("daemon binds");
    let addr = handle.addr();
    let direct = Open::eager().open(&path).expect("direct reader");
    let want = direct.element(&[1, 2, 3]).expect("direct element");

    // Fill the cap with two live sessions. A served round trip on each
    // proves its session thread exists before the third connection arrives
    // (plain connect() only proves the kernel accepted the socket).
    let mut a = ServeClient::connect(addr).expect("client a connects");
    let mut b = ServeClient::connect(addr).expect("client b connects");
    assert_eq!(
        a.element("field", &[1, 2, 3]).unwrap().to_bits(),
        want.to_bits()
    );
    assert_eq!(
        b.element("field", &[1, 2, 3]).unwrap().to_bits(),
        want.to_bits()
    );

    // The third connection is over the cap: the accept thread answers a
    // typed Busy and closes, so the first read on this socket sees it.
    let mut c = ServeClient::connect(addr).expect("client c connects at TCP level");
    match c.element("field", &[1, 2, 3]) {
        Err(TuckerError::Busy { .. }) => {}
        other => panic!("over-cap connection must get a typed Busy, got: {other:?}"),
    }
    drop(c);

    // The live sessions are untouched, and the shed was counted.
    assert_eq!(
        a.element("field", &[1, 2, 3]).unwrap().to_bits(),
        want.to_bits()
    );
    let stats = b.stats().expect("stats from a live session");
    assert!(
        stats.shed_sessions >= 1,
        "shed_sessions must count the refused connection, got {}",
        stats.shed_sessions
    );
    assert_eq!(stats.busy_rejections, 0, "no request ever hit admission");

    // Freeing a slot re-opens the door: after client a hangs up, a new
    // connection is accepted once the accept thread prunes the dead session.
    drop(a);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let mut d = ServeClient::connect(addr).expect("replacement client connects");
        match d.element("field", &[1, 2, 3]) {
            Ok(v) => {
                assert_eq!(v.to_bits(), want.to_bits());
                break;
            }
            Err(TuckerError::Busy { .. }) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("replacement client must eventually be admitted: {e}"),
        }
    }

    drop(b);
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// 4. Server-side fault injection: protocol violence never panics the daemon,
//    wedges it, or corrupts another session.
// ---------------------------------------------------------------------------

/// One long-lived daemon shared by every fault-injection case, plus a
/// pristine expected answer. If any attack poisoned it, the follow-up
/// well-formed probe of the *next* case fails loudly.
struct FaultFixture {
    addr: SocketAddr,
    expected: f64,
    // Held: dropping the handle would stop the daemon mid-suite.
    _handle: ServerHandle,
}

fn fault_fixture() -> &'static FaultFixture {
    static FIXTURE: OnceLock<FaultFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let path = chunked_artifact("faults", &[9, 8, 10], Codec::Q16, 3.3);
        let handle = serve(
            "127.0.0.1:0",
            &[("field".to_string(), path.clone())],
            ServeConfig {
                cache_chunks: 4,
                ..ServeConfig::default()
            },
        )
        .expect("daemon binds");
        let expected = Open::eager()
            .open(&path)
            .expect("direct reader")
            .element(&[4, 3, 2])
            .expect("direct element");
        // Force the daemon's lazy reader open while the file still exists;
        // the open descriptor outlives the unlink below.
        let mut warm = ServeClient::connect(handle.addr()).expect("warmup connects");
        warm.open("field").expect("warmup open");
        drop(warm);
        std::fs::remove_file(&path).ok();
        FaultFixture {
            addr: handle.addr(),
            expected,
            _handle: handle,
        }
    })
}

/// Asserts the daemon still answers a well-formed client correctly.
fn assert_daemon_healthy(fixture: &FaultFixture) {
    let mut client = ServeClient::connect(fixture.addr).expect("healthy client connects");
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("set timeout");
    let got = client.element("field", &[4, 3, 2]).expect("healthy query");
    assert_eq!(got.to_bits(), fixture.expected.to_bits());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn daemon_survives_protocol_violence(
        attack in 0usize..5,
        garbage in prop::collection::vec(0u8..=255, 1..200),
        big_len in (1u32 << 23)..u32::MAX,
    ) {
        let fixture = fault_fixture();
        let mut raw = TcpStream::connect(fixture.addr).expect("attacker connects");
        raw.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        raw.set_write_timeout(Some(Duration::from_secs(5))).expect("timeout");
        match attack {
            0 => {
                // Truncated frame: advertise more bytes than are sent, then
                // vanish. The daemon must time the stall out, not wait forever.
                let mut msg = (garbage.len() as u32 + 64).to_le_bytes().to_vec();
                msg.extend_from_slice(&garbage);
                raw.write_all(&msg).ok();
                drop(raw);
            }
            1 => {
                // Oversized length prefix: rejected before any allocation,
                // with a typed protocol error frame if the peer sticks around.
                raw.write_all(&big_len.to_le_bytes()).ok();
                let mut reply = Vec::new();
                raw.read_to_end(&mut reply).ok();
                // Either an error frame or a straight drop is fine; a hang
                // is not (read_to_end would have timed out above).
            }
            2 => {
                // Unknown opcode / garbage payload in a well-framed message:
                // the session answers a typed error and survives.
                let mut msg = (garbage.len() as u32).to_le_bytes().to_vec();
                msg.extend_from_slice(&garbage);
                raw.write_all(&msg).ok();
                let mut prefix = [0u8; 4];
                if raw.read_exact(&mut prefix).is_ok() {
                    let len = u32::from_le_bytes(prefix) as usize;
                    prop_assert!(len <= 1 << 26, "oversized error frame");
                    let mut payload = vec![0u8; len];
                    raw.read_exact(&mut payload).expect("error frame body");
                    // 0xEE = RESP_ERR: garbage must never decode as success.
                    prop_assert_eq!(payload[0], 0xEE);
                }
            }
            3 => {
                // Zero-length frame: invalid by construction.
                raw.write_all(&0u32.to_le_bytes()).ok();
                let mut reply = Vec::new();
                raw.read_to_end(&mut reply).ok();
            }
            _ => {
                // Mid-request disconnect: half a length prefix, then gone.
                raw.write_all(&[0x10, 0x00]).ok();
                drop(raw);
            }
        }
        // The daemon is still alive, correct, and serving other sessions.
        assert_daemon_healthy(fixture);
    }
}

// ---------------------------------------------------------------------------
// 5. Client-side fault injection: a misbehaving server yields typed errors,
//    never a panic or an unbounded hang.
// ---------------------------------------------------------------------------

/// A stub server that accepts one connection, reads (some of) the request,
/// writes `reply`, and optionally slams the connection shut.
fn stub_server(reply: Vec<u8>) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("stub binds");
    let addr = listener.local_addr().expect("stub addr");
    std::thread::spawn(move || {
        if let Ok((mut sock, _)) = listener.accept() {
            let mut sink = [0u8; 4096];
            sock.read(&mut sink).ok();
            sock.write_all(&reply).ok();
        }
    });
    addr
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn client_survives_misbehaving_servers(
        kind in 0usize..4,
        garbage in prop::collection::vec(0u8..=255, 0..120),
        big_len in (1u32 << 26)..u32::MAX,
    ) {
        let reply = match kind {
            // Immediate close: no reply at all.
            0 => Vec::new(),
            // Oversized response length prefix: must be rejected before
            // the client allocates the advertised 64 MiB+.
            1 => big_len.to_le_bytes().to_vec(),
            // Truncated response: advertise more than is sent.
            2 => {
                let mut msg = (garbage.len() as u32 + 512).to_le_bytes().to_vec();
                msg.extend_from_slice(&garbage);
                msg
            }
            // Well-framed garbage payload.
            _ => {
                let mut msg = (garbage.len().max(1) as u32).to_le_bytes().to_vec();
                msg.extend_from_slice(&garbage);
                if garbage.is_empty() {
                    msg.push(0x00);
                }
                msg
            }
        };
        let addr = stub_server(reply);
        let mut client = ServeClient::connect(addr).expect("client connects to stub");
        client.set_timeout(Some(Duration::from_millis(500))).expect("set timeout");
        // Any typed error is acceptable; a panic or a hang past the timeout
        // is not. (Truncated stalls surface as a timeout Io error; closed
        // sockets as ProtocolError::Truncated; bad prefixes as FrameLength;
        // garbage as a decode error.)
        let outcome = client.element("field", &[0, 0, 0]);
        prop_assert!(outcome.is_err(), "garbage decoded as a successful reply");
    }
}
