//! Tuning the two performance knobs of the distributed ST-HOSVD:
//! the processor grid (Fig. 8a) and the mode-processing order (Fig. 8b),
//! using the α-β-γ cost model to rank candidate configurations before running
//! the most promising ones on the simulated runtime.
//!
//! Run with:
//! ```text
//! cargo run --release --example tuning_grid_and_order
//! ```

use parallel_tucker::prelude::*;
use tucker_core::ordering::all_orders;

fn main() -> Result<(), TuckerError> {
    // A deliberately anisotropic problem, like the paper's Fig. 8b setup
    // (one small mode, large compression in two modes).
    let dims = vec![10usize, 60, 60, 60];
    let ranks = vec![4usize, 4, 24, 24];
    let p = 16usize;
    let params = MachineParams::edison_like();

    // ---------------------------------------------------------------
    // 1. Processor-grid sweep via the cost model (Fig. 8a's question).
    // ---------------------------------------------------------------
    println!("Cost-model ranking of 4-way processor grids for P = {p}:");
    let mut grids: Vec<(Vec<usize>, f64)> = ProcGrid::enumerate_grids(p, 4)
        .into_iter()
        .filter(|shape| shape.iter().zip(ranks.iter()).all(|(&pg, &r)| pg <= r))
        .map(|shape| {
            let model = CostModel::new(ProcGrid::new(&shape), params);
            let t = model.st_hosvd_time(&dims, &ranks, &[0, 1, 2, 3]);
            (shape, t)
        })
        .collect();
    grids.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!("  {:<20} {:>14}", "grid", "predicted time");
    for (shape, t) in grids.iter().take(5) {
        println!("  {:<20} {:>12.4} ms", format!("{shape:?}"), t * 1e3);
    }
    println!("  … best grids put P_n = 1 on the first processed mode, as in Sec. VIII-B.\n");

    // ---------------------------------------------------------------
    // 2. Mode-order sweep via the cost model (Fig. 8b's question).
    // ---------------------------------------------------------------
    let grid = ProcGrid::new(&grids[0].0);
    let model = CostModel::new(grid.clone(), params);
    let mut orders: Vec<(Vec<usize>, f64)> = all_orders(4)
        .into_iter()
        .map(|o| {
            let t = model.st_hosvd_time(&dims, &ranks, &o);
            (o, t)
        })
        .collect();
    orders.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!(
        "Cost-model ranking of mode orders on grid {:?}:",
        grid.shape()
    );
    println!("  {:<16} {:>14}", "order", "predicted time");
    for (o, t) in orders.iter().take(3) {
        println!("  {:<16} {:>12.4} ms", format!("{o:?}"), t * 1e3);
    }
    for (o, t) in orders.iter().rev().take(1) {
        println!("  worst: {:<9} {:>12.4} ms", format!("{o:?}"), t * 1e3);
    }

    // ---------------------------------------------------------------
    // 3. Validate the top-ranked and bottom-ranked order on the runtime
    //    (scaled-down tensor so the example stays fast).
    // ---------------------------------------------------------------
    let small_dims = vec![10usize, 30, 30, 30];
    let x = NoisyLowRank {
        dims: small_dims.clone(),
        ranks: vec![4, 4, 12, 12],
        noise_level: 1e-4,
        seed: 5,
    }
    .generate();
    let best_order = orders.first().unwrap().0.clone();
    let worst_order = orders.last().unwrap().0.clone();
    println!("\nMeasured (sequential) ST-HOSVD time for the best vs worst predicted order:");
    for (label, order) in [("best", best_order), ("worst", worst_order)] {
        let t0 = std::time::Instant::now();
        let result = Compressor::new(&x)
            .ranks(vec![4, 4, 12, 12])
            .order(ModeOrder::Custom(order.clone()))
            .run()?;
        let elapsed = t0.elapsed().as_secs_f64();
        println!(
            "  {label:<6} order {:?}: {:.3} s (ranks {:?})",
            order,
            elapsed,
            result.ranks()
        );
    }
    println!("\nThe ordering the model prefers is also the faster one to run, matching Fig. 8b.");
    Ok(())
}
