//! Post-hoc analysis on compressed data: reconstruct only the pieces you need.
//!
//! The paper's motivating workflow (Secs. I, II-C, VII): a terabyte-scale
//! simulation is compressed once on a cluster; analysts then pull out a single
//! species, a time window, or a coarsened grid on a laptop, straight from the
//! (small) core and factors. This example mimics that workflow on a combustion
//! surrogate: compress, drop the original, then answer analysis queries from
//! the compressed form alone.
//!
//! Run with:
//! ```text
//! cargo run --release --example subset_analysis
//! ```

use parallel_tucker::prelude::*;
use tucker_core::reconstruct::{reconstruct_coarse, reconstruct_slice, reconstruct_subtensor};

fn main() {
    // Compress the HCCI-like surrogate at eps = 1e-3.
    let ds = DatasetPreset::Hcci.generate(1, 7);
    let dims = ds.data.dims().to_vec();
    let original_mb = ds.data.len() as f64 * 8.0 / 1e6;
    let result = st_hosvd(&ds.data, &SthosvdOptions::with_tolerance(1e-3));
    let compressed_mb = result.tucker.storage() as f64 * 8.0 / 1e6;
    println!(
        "Compressed {:?} ({:.1} MB) to core {:?} + factors ({:.2} MB): {:.0}x smaller",
        dims,
        original_mb,
        result.ranks,
        compressed_mb,
        result.tucker.compression_ratio(&dims)
    );

    // Keep only the compressed model from here on.
    let model = result.tucker;
    let exact = ds.data; // retained only to report the accuracy of each query

    // --- Query 1: a single species field at one time step --------------------
    let species = 3;
    let t = 20;
    let spec = SubtensorSpec::all(&dims)
        .restrict_mode(2, vec![species])
        .restrict_mode(3, vec![t]);
    let field = reconstruct_subtensor(&model, &spec);
    let truth = tucker_tensor::extract_subtensor(&exact, &spec);
    println!(
        "Query 1: species {species} at time {t}: shape {:?}, {:.1} kB reconstructed, error {:.2e}",
        field.dims(),
        field.len() as f64 * 8.0 / 1e3,
        normalized_rms_error(&truth, &field)
    );

    // --- Query 2: time history of one probe point ----------------------------
    let probe = SubtensorSpec::from_indices(vec![
        vec![24],               // x
        vec![24],               // y
        vec![species],          // variable
        (0..dims[3]).collect(), // all time steps
    ]);
    let history = reconstruct_subtensor(&model, &probe);
    let truth = tucker_tensor::extract_subtensor(&exact, &probe);
    println!(
        "Query 2: probe time series of length {}: error {:.2e}",
        history.len(),
        normalized_rms_error(&truth, &history)
    );

    // --- Query 3: coarsened spatial field (every 4th grid point) -------------
    let coarse = reconstruct_coarse(&model, &[0, 1], 4);
    println!(
        "Query 3: 4x-coarsened field: shape {:?} ({:.1} kB instead of {:.1} MB)",
        coarse.dims(),
        coarse.len() as f64 * 8.0 / 1e3,
        original_mb
    );

    // --- Query 4: one full time step, all species ----------------------------
    let snapshot = reconstruct_slice(&model, 3, dims[3] - 1);
    let spec = SubtensorSpec::all(&dims).restrict_mode(3, vec![dims[3] - 1]);
    let truth = tucker_tensor::extract_subtensor(&exact, &spec);
    println!(
        "Query 4: final-time snapshot {:?}: error {:.2e}",
        snapshot.dims(),
        normalized_rms_error(&truth, &snapshot)
    );

    println!("\nAll queries were answered from the compressed model without ever\nmaterializing the full reconstruction.");
}
