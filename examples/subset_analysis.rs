//! Post-hoc analysis on compressed data: reconstruct only the pieces you need.
//!
//! The paper's motivating workflow (Secs. I, II-C, VII): a terabyte-scale
//! simulation is compressed once on a cluster; analysts then pull out a single
//! species, a time window, or a coarsened grid on a laptop, straight from the
//! (small) core and factors. This example mimics that workflow on a combustion
//! surrogate through the `tucker-api` facade: [`Compressor::write_to`]
//! persists a `.tkr` artifact, the original is dropped, and every analysis
//! query is answered by a lazily-opened [`TensorQuery`] reader — the
//! artifact's chunks are decoded only as queries touch them.
//!
//! Run with:
//! ```text
//! cargo run --release --example subset_analysis
//! ```

use parallel_tucker::prelude::*;
use tucker_core::reconstruct::reconstruct_coarse;

fn main() -> Result<(), TuckerError> {
    // Compress the HCCI-like surrogate at eps = 1e-3 and persist it
    // losslessly (Codec::F64), as the cluster-side job would.
    let ds = DatasetPreset::Hcci.generate(1, 7);
    let dims = ds.data.dims().to_vec();
    let original_mb = ds.data.len() as f64 * 8.0 / 1e6;
    let path = std::env::temp_dir().join(format!("subset_analysis_{}.tkr", std::process::id()));
    let written = Compressor::new(&ds.data)
        .tolerance(1e-3)
        .codec(Codec::F64)
        .meta(TkrMetadata::for_dataset(&ds))
        .write_to(&path)?;
    let compressed_mb = written.compressed.tucker().storage() as f64 * 8.0 / 1e6;
    println!(
        "Compressed {:?} ({:.1} MB) to core {:?} + factors ({:.2} MB): {:.0}x smaller",
        dims,
        original_mb,
        written.compressed.ranks(),
        compressed_mb,
        written.compressed.tucker().compression_ratio(&dims)
    );

    // Keep only the artifact from here on: open it lazily, so each query
    // decodes just the core chunks it touches.
    let reader = Open::lazy().cache_chunks(8).open(&path)?;
    let exact = ds.data; // retained only to report the accuracy of each query

    // --- Query 1: a single species field at one time step --------------------
    let species = 3;
    let t = 20;
    let spec = SubtensorSpec::all(&dims)
        .restrict_mode(2, vec![species])
        .restrict_mode(3, vec![t]);
    let field = reader.reconstruct_subtensor(&spec)?;
    let truth = tucker_tensor::extract_subtensor(&exact, &spec);
    println!(
        "Query 1: species {species} at time {t}: shape {:?}, {:.1} kB reconstructed, error {:.2e}",
        field.dims(),
        field.len() as f64 * 8.0 / 1e3,
        normalized_rms_error(&truth, &field)
    );

    // --- Query 2: time history of one probe point ----------------------------
    let probe = SubtensorSpec::from_indices(vec![
        vec![24],               // x
        vec![24],               // y
        vec![species],          // variable
        (0..dims[3]).collect(), // all time steps
    ]);
    let history = reader.reconstruct_subtensor(&probe)?;
    let truth = tucker_tensor::extract_subtensor(&exact, &probe);
    println!(
        "Query 2: probe time series of length {}: error {:.2e}",
        history.len(),
        normalized_rms_error(&truth, &history)
    );

    // --- Query 3: one full time step, all species ----------------------------
    let snapshot = reader.reconstruct_slice(3, dims[3] - 1)?;
    let spec = SubtensorSpec::all(&dims).restrict_mode(3, vec![dims[3] - 1]);
    let truth = tucker_tensor::extract_subtensor(&exact, &spec);
    println!(
        "Query 3: final-time snapshot {:?}: error {:.2e}",
        snapshot.dims(),
        normalized_rms_error(&truth, &snapshot)
    );

    // --- Query 4: coarsened spatial field (every 4th grid point) -------------
    // Coarsening needs the decoded decomposition; pull it out of the reader
    // (this decodes the remaining chunks once).
    let model = reader.into_tucker()?;
    let coarse = reconstruct_coarse(&model, &[0, 1], 4);
    println!(
        "Query 4: 4x-coarsened field: shape {:?} ({:.1} kB instead of {:.1} MB)",
        coarse.dims(),
        coarse.len() as f64 * 8.0 / 1e3,
        original_mb
    );

    // Out-of-range queries fail with a diagnosable error, not a crash.
    let reader = Open::eager().open(&path)?;
    let bad = reader.reconstruct_slice(2, dims[2] + 5);
    println!(
        "\nAsking for species {} of {} fails cleanly: {}",
        dims[2] + 5,
        dims[2],
        bad.err().map_or_else(String::new, |e| e.to_string())
    );
    std::fs::remove_file(&path).ok();

    println!("\nAll queries were answered from the compressed artifact without ever\nmaterializing the full reconstruction.");
    Ok(())
}
