//! Compress the three combustion-surrogate datasets (HCCI / TJLR / SP) across a
//! sweep of error tolerances — the workflow behind Fig. 7 and Tab. II of the
//! paper, at laptop scale, driven through the `tucker-api` [`Compressor`].
//!
//! Run with:
//! ```text
//! cargo run --release --example combustion_compression
//! ```

use parallel_tucker::prelude::*;
use tucker_tensor::max_abs_diff;

fn main() -> Result<(), TuckerError> {
    println!("Dataset surrogates (paper originals are 70–550 GB; see DESIGN.md):\n");
    for preset in DatasetPreset::all() {
        let ds = preset.generate(1, 2024);
        let dims = ds.data.dims().to_vec();
        println!(
            "=== {:5} surrogate: {:?} ({:.1} MB)  [paper: {:?}, {:.0} GB]",
            preset.name(),
            dims,
            ds.data.len() as f64 * 8.0 / 1e6,
            preset.paper_dims(),
            preset.paper_size_bytes() as f64 / 1e9,
        );

        println!(
            "    {:<10} {:>22} {:>12} {:>12} {:>12}",
            "epsilon", "reduced dims", "compression", "ST-HOSVD", "max-abs err"
        );
        for eps in [1e-2, 1e-3, 1e-4] {
            let result = Compressor::new(&ds.data).tolerance(eps).run()?;
            let rec = result.tucker().reconstruct();
            let err = normalized_rms_error(&ds.data, &rec);
            let max_err = max_abs_diff(&ds.data, &rec);
            println!(
                "    {:<10.0e} {:>22} {:>11.1}x {:>12.3e} {:>12.3e}",
                eps,
                format!("{:?}", result.ranks()),
                result.tucker().compression_ratio(ds.data.dims()),
                err,
                max_err
            );
        }

        // One HOOI refinement at eps = 1e-3, mirroring Tab. II's comparison:
        // the same builder, with the ST-HOSVD ranks fixed and two sweeps.
        let eps = 1e-3;
        let st = Compressor::new(&ds.data).tolerance(eps).run()?;
        let ho = Compressor::new(&ds.data)
            .ranks(st.ranks().to_vec())
            .refine(Refine::sweeps(2))
            .run()?;
        let st_err = normalized_rms_error(&ds.data, &st.tucker().reconstruct());
        let ho_err = normalized_rms_error(&ds.data, &ho.tucker().reconstruct());
        println!(
            "    HOOI refinement at eps=1e-3: {:.4e} -> {:.4e} (improvement {:.2}%)\n",
            st_err,
            ho_err,
            100.0 * (st_err - ho_err) / st_err.max(1e-300)
        );
    }
    println!(
        "As in the paper, SP compresses hardest, TJLR least, and HOOI adds only\n\
         marginal improvement over the ST-HOSVD initialization."
    );
    Ok(())
}
