//! Run the *distributed* ST-HOSVD on simulated processor grids and verify that
//! it matches the sequential algorithm — the core claim of the paper's Secs.
//! IV–VI, exercised end to end through the `tucker-api` facade: the same
//! [`Compressor`] builder drives both the sequential reference and every
//! grid run ([`Compressor::distributed`] launches the SPMD region, runs the
//! parallel kernels per rank, and gathers the result to root).
//!
//! Run with:
//! ```text
//! cargo run --release --example distributed_compression
//! ```

use parallel_tucker::prelude::*;

fn main() -> Result<(), TuckerError> {
    // A synthetic 4-way dataset with known low-rank structure plus noise.
    let dims = vec![48usize, 48, 12, 16];
    let gen = NoisyLowRank {
        dims: dims.clone(),
        ranks: vec![6, 6, 4, 4],
        noise_level: 1e-3,
        seed: 99,
    };
    let x = gen.generate();
    println!(
        "Data tensor {:?} ({:.1} MB), true multilinear rank {:?} plus 0.1% noise",
        dims,
        x.len() as f64 * 8.0 / 1e6,
        [6, 6, 4, 4]
    );

    // Sequential reference, through the same builder.
    let t0 = std::time::Instant::now();
    let seq = Compressor::new(&x).tolerance(1e-2).run()?;
    let seq_time = t0.elapsed().as_secs_f64();
    let seq_err = normalized_rms_error(&x, &seq.tucker().reconstruct());
    println!(
        "\nSequential ST-HOSVD:   ranks {:?}, error {:.2e}, {:.3} s",
        seq.ranks(),
        seq_err,
        seq_time
    );

    // Distributed runs on growing processor grids: only the source
    // constructor changes, the rest of the plan is identical.
    for grid_shape in [
        vec![1usize, 1, 1, 1],
        vec![2, 1, 1, 1],
        vec![2, 2, 1, 1],
        vec![2, 2, 2, 1],
    ] {
        let grid = ProcGrid::new(&grid_shape);
        let p = grid.size();
        let result = Compressor::distributed(&x, grid).tolerance(1e-2).run()?;
        let err = normalized_rms_error(&x, &result.tucker().reconstruct());
        let info = result
            .dist_info()
            .expect("distributed runs carry communication accounting");
        println!(
            "P = {:<3} grid {:?}: ranks {:?}, error {:.2e}, {:.3} s wall, \
             {:>8} messages, {:>10} words moved",
            p,
            grid_shape,
            result.ranks(),
            err,
            info.elapsed,
            info.messages_sent,
            info.words_sent
        );
        assert_eq!(
            result.ranks(),
            seq.ranks(),
            "distributed ranks must match sequential"
        );
    }

    println!(
        "\nEvery grid reproduces the sequential ranks and error; the communication\n\
         volume grows with the grid exactly as the paper's cost model predicts\n\
         (see the fig9 benchmark binaries for the scaling study)."
    );
    Ok(())
}
