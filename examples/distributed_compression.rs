//! Run the *distributed* ST-HOSVD on a simulated processor grid and verify that
//! it matches the sequential algorithm — the core claim of the paper's Secs.
//! IV–VI, exercised end to end on the in-process message-passing runtime.
//!
//! Run with:
//! ```text
//! cargo run --release --example distributed_compression
//! ```

use parallel_tucker::prelude::*;
use tucker_core::dist::dist_reconstruct;

fn main() {
    // A synthetic 4-way dataset with known low-rank structure plus noise.
    let dims = vec![48usize, 48, 12, 16];
    let gen = NoisyLowRank {
        dims: dims.clone(),
        ranks: vec![6, 6, 4, 4],
        noise_level: 1e-3,
        seed: 99,
    };
    let x = gen.generate();
    println!(
        "Data tensor {:?} ({:.1} MB), true multilinear rank {:?} plus 0.1% noise",
        dims,
        x.len() as f64 * 8.0 / 1e6,
        [6, 6, 4, 4]
    );

    // Sequential reference.
    let t0 = std::time::Instant::now();
    let seq = st_hosvd(&x, &SthosvdOptions::with_tolerance(1e-2));
    let seq_time = t0.elapsed().as_secs_f64();
    let seq_err = normalized_rms_error(&x, &seq.tucker.reconstruct());
    println!(
        "\nSequential ST-HOSVD:   ranks {:?}, error {:.2e}, {:.3} s",
        seq.ranks, seq_err, seq_time
    );

    // Distributed runs on growing processor grids.
    for grid_shape in [
        vec![1usize, 1, 1, 1],
        vec![2, 1, 1, 1],
        vec![2, 2, 1, 1],
        vec![2, 2, 2, 1],
    ] {
        let x_clone = x.clone();
        let grid = ProcGrid::new(&grid_shape);
        let p = grid.size();
        let handle = tucker_distmem::runtime::spmd_with_grid_handle(grid, move |comm| {
            let dx = DistTensor::from_global(&comm, &x_clone);
            let result = dist_st_hosvd(&comm, &dx, &SthosvdOptions::with_tolerance(1e-2));
            let rec = dist_reconstruct(&comm, &result.tucker);
            // Per-rank local error contribution (squared), reduced later.
            let diff = dx.local().sub(rec.local());
            (result.ranks.clone(), diff.norm_sq(), dx.local().norm_sq())
        });
        let ranks = handle.results[0].0.clone();
        let err_sq: f64 = handle.results.iter().map(|r| r.1).sum();
        let norm_sq: f64 = handle.results.iter().map(|r| r.2).sum();
        let err = (err_sq / norm_sq).sqrt();
        let stats = handle.total_stats();
        println!(
            "P = {:<3} grid {:?}: ranks {:?}, error {:.2e}, {:.3} s wall, \
             {:>8} messages, {:>10} words moved",
            p, grid_shape, ranks, err, handle.elapsed, stats.messages_sent, stats.words_sent
        );
        assert_eq!(ranks, seq.ranks, "distributed ranks must match sequential");
    }

    println!(
        "\nEvery grid reproduces the sequential ranks and error; the communication\n\
         volume grows with the grid exactly as the paper's cost model predicts\n\
         (see the fig9 benchmark binaries for the scaling study)."
    );
}
