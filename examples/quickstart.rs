//! Quickstart: compress a synthetic scientific tensor, inspect the result,
//! reconstruct, and measure the error — through the unified `tucker-api`
//! facade.
//!
//! Exercises the paper's core sequential workflow (Secs. II–III): ST-HOSVD
//! with ε-driven rank selection (Alg. 1), HOOI refinement (Alg. 2), and
//! partial reconstruction from the compressed form (eq. (1), Sec. II-C).
//! Everything goes through [`Compressor`]: the builder validates the inputs
//! and dispatches to the exact same kernels the lower-level `st_hosvd` /
//! `hooi` calls would run, bit for bit.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use parallel_tucker::prelude::*;

fn main() -> Result<(), TuckerError> {
    // ------------------------------------------------------------------
    // 1. Build a 4-way data tensor: a small synthetic "simulation" with two
    //    spatial dimensions, a handful of variables, and time steps.
    // ------------------------------------------------------------------
    let dims = [40usize, 40, 8, 20];
    println!(
        "Generating a {:?} tensor ({} values, {:.1} MB)…",
        dims,
        dims.iter().product::<usize>(),
        dims.iter().product::<usize>() as f64 * 8.0 / 1e6
    );
    let x = DenseTensor::from_fn(&dims, |idx| {
        let (i, j, v, t) = (
            idx[0] as f64 / 40.0,
            idx[1] as f64 / 40.0,
            idx[2] as f64,
            idx[3] as f64 / 20.0,
        );
        // A traveling Gaussian bump whose amplitude depends on the variable,
        // plus a smooth background: clearly low-rank structure.
        let cx = 0.3 + 0.4 * t;
        let cy = 0.5;
        let bump = (-((i - cx).powi(2) + (j - cy).powi(2)) / 0.02).exp();
        (1.0 + 0.5 * v) * bump + 0.1 * (6.28 * (i + j)).sin()
    });

    // ------------------------------------------------------------------
    // 2. Compress with ST-HOSVD at a few tolerances.
    // ------------------------------------------------------------------
    println!(
        "\n{:<10} {:>18} {:>14} {:>14}",
        "epsilon", "core size", "compression", "actual error"
    );
    for eps in [1e-2, 1e-4, 1e-6] {
        let result = Compressor::new(&x).tolerance(eps).run()?;
        let rec = result.tucker().reconstruct();
        let err = normalized_rms_error(&x, &rec);
        println!(
            "{:<10.0e} {:>18} {:>13.1}x {:>14.2e}",
            eps,
            format!("{:?}", result.ranks()),
            result.tucker().compression_ratio(&dims),
            err
        );
        assert!(err <= eps, "the error guarantee must hold");
    }

    // ------------------------------------------------------------------
    // 3. Refine with HOOI and compare. The builder reuses the ST-HOSVD
    //    ranks by fixing them for the refined run.
    // ------------------------------------------------------------------
    let eps = 1e-4;
    let st = Compressor::new(&x).tolerance(eps).run()?;
    let ho = Compressor::new(&x)
        .ranks(st.ranks().to_vec())
        .refine(Refine::sweeps(3))
        .run()?;
    let st_err = normalized_rms_error(&x, &st.tucker().reconstruct());
    let ho_err = normalized_rms_error(&x, &ho.tucker().reconstruct());
    let iterations = ho.hooi().map_or(0, |h| h.iterations);
    println!(
        "\nST-HOSVD error {:.3e}  →  HOOI error {:.3e}  ({} iterations)",
        st_err, ho_err, iterations
    );

    // ------------------------------------------------------------------
    // 4. Reconstruct only a subset: one variable at the final time step.
    // ------------------------------------------------------------------
    let spec = SubtensorSpec::all(&dims)
        .restrict_mode(2, vec![3])
        .restrict_mode(3, vec![19]);
    let sub = tucker_core::reconstruct_subtensor(st.tucker(), &spec);
    println!(
        "\nReconstructed a single variable/time-step slice of shape {:?} \
         without forming the full tensor.",
        sub.dims()
    );

    // ------------------------------------------------------------------
    // 5. Malformed input is an error value, not a crash: the builder
    //    validates before any kernel runs.
    // ------------------------------------------------------------------
    let bad = Compressor::new(&x).ranks(vec![999, 1, 1, 1]).run();
    println!(
        "\nAsking for rank 999 in a 40-wide mode fails cleanly:\n  {}",
        bad.err().map_or_else(String::new, |e| e.to_string())
    );
    println!("Done.");
    Ok(())
}
